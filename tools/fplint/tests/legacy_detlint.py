#!/usr/bin/env python3
#
# FROZEN verbatim copy of the last regex-based tools/detlint.py, kept as
# the parity oracle: the fplint.parity ctest runs this engine and fplint
# --compat-detlint over the live src/ tree and diffs the output byte for
# byte. Do not edit — byte-identity with history is the point.
"""detlint: project-specific determinism lint for the FlowPulse simulator.

Every FlowPulse result must be reproducible from its seed alone, and a
serial run must be bit-identical to a parallel one. That property is easy
to break with one innocent line — iterating a hash map, reading a wall
clock, constructing a std:: RNG — so this lint makes the determinism rules
machine-checked instead of tribal knowledge. All findings are errors.

Rules
-----
  unordered            Declaring a std::unordered_* container. Hash order is
                       seeded per-process on some standard libraries, so any
                       iteration over one can leak nondeterminism into
                       results. Declarations are allowed only with a
                       justification that the container is never iterated
                       (which the unordered-iteration rule then enforces).
  unordered-iteration  Range-for / begin()/end() over an identifier that is
                       declared anywhere in the tree as an unordered
                       container. This is the rule that makes `ok(unordered)`
                       waivers sound.
  pointer-key          Ordered or unordered container keyed by a pointer.
                       Pointer order is allocation order, which varies run
                       to run (ASLR, allocator state).
  wall-clock           std::chrono clocks, ::time(), gettimeofday(),
                       clock(). Simulation state must advance only on
                       sim::Time. steady_clock may be waived for
                       reporting-only wall durations.
  banned-rng           std::rand/srand, std::random_device, and all
                       <random> engines/distributions. All randomness must
                       flow from the seeded sim::Rng (which has no default
                       constructor, so it cannot be created unseeded).
  par-float-accum      += / -= accumulation into a float/double identifier
                       in a file that uses threading primitives. Floating
                       point addition is not associative; merge order must
                       be made deterministic (e.g. parallel_indexed writes
                       per-index slots, then a serial reduction).
  raw-scalar-id        Raw integer parameter or field whose name matches
                       *port*|*host*|*leaf*|*spine*|*link*|*bytes* in a
                       public header of a module converted to the core::
                       strong-type layer (core, net, flowpulse, ctrl,
                       baseline, exp; transport/collective byte fields are
                       the ROADMAP follow-up). These must be
                       net::*Id / core::Bytes so cross-index mix-ups stay
                       compile errors. Count-like names are exempt: num_*,
                       *_count, *_per_*, and plurals (uplinks, hosts —
                       but not *bytes*, which is the unit the Bytes type
                       exists for).
  strongid-cast        static_cast to a strong id type outside src/core/.
                       The blessed idiom is brace construction at a
                       documented boundary (LeafId{raw}); a cast is how one
                       id space gets laundered into another
                       (SpineId{uplink.v()} at least names the crossing,
                       static_cast hides it).
  os-io                Including an OS I/O header (sockets, epoll, eventfd,
                       fds: sys/socket.h, sys/epoll.h, netinet/*, poll.h,
                       fcntl.h, unistd.h, ...) outside a realtime module.
                       Simulation code must never touch the outside world;
                       src/daemon is the one sanctioned realtime module
                       (the flowpulsed transport), where fds, epoll and
                       wall clocks are the point — so the wall-clock rule
                       is also skipped there.
  mutable-global       Shared mutable state with static storage duration:
                       a namespace-scope mutable global (column-0
                       declaration — the repo does not indent namespace
                       contents), or a static / thread_local mutable
                       object at function or class scope. Such state is
                       invisible cross-lane coupling: it breaks the
                       serial == parallel guarantee the moment two lanes
                       touch it (and `static thread_local` scratch merely
                       hides the coupling behind per-thread copies whose
                       contents depend on lane scheduling). Hoist it into
                       a member or parameter; the post-build nm symbol
                       audit (tools/check_mutable_symbols.cmake) catches
                       whatever shape this line-level rule cannot see.
  raw-serialization-time
                       Calling the raw-scalar serialization-time math
                       (sim::detail::serialization_time, or the old
                       sim::serialization_time spelling) anywhere but its
                       definition (src/sim/time.h). Product code must go
                       through core::serialization_time(Bytes, GbitsPerSec)
                       so byte counts and link rates stay strong-typed;
                       the unit layer (src/core/units.h) carries the one
                       waived call into the detail math.
  mutable-member       A `mutable` data member in a converted module:
                       mutation behind a const interface is where hidden
                       shared state likes to live. Waivable with a
                       justification (e.g. a memoization cache that is
                       per-instance and rebuilt deterministically, or a
                       mutex — `mutable core::Mutex`/`std::mutex` members
                       are exempt outright, locking a const object is the
                       idiom).

Waivers
-------
A finding is waived by a justified comment on the same line or on the
comment block immediately above:

    // detlint: ok(<rule>): <non-empty justification>

An unknown rule id or an empty justification is itself an error.

Usage: detlint.py <dir-or-file> [more paths...]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

RULES = {
    "unordered",
    "unordered-iteration",
    "pointer-key",
    "wall-clock",
    "banned-rng",
    "par-float-accum",
    "raw-scalar-id",
    "strongid-cast",
    "os-io",
    "mutable-global",
    "mutable-member",
    "raw-serialization-time",
}

DIRECTIVE_RE = re.compile(r"//\s*detlint:\s*ok\(([\w-]+)\)\s*:?\s*(.*\S)?")

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b")
# Identifier of a (possibly member) variable declared with an unordered
# container type: the last identifier on the declaration before ; { or =.
UNORDERED_IDENT_RE = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<.*>\s+(\w+)\s*(?:;|\{|=)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
# end() alone is a find()-sentinel comparison; traversal always needs begin().
BEGIN_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?r?begin\s*\(")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+"
    r"(?:\s*<[^<>]*>)?\s*\*")
WALL_CLOCK_RES = [
    (re.compile(r"\bstd::chrono::system_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bstd::chrono::high_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bstd::chrono::steady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.>])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time()"),
    (re.compile(r"(?<![\w.>])clock\s*\(\s*\)"), "clock()"),
]
BANNED_RNG_RES = [
    (re.compile(r"\bstd::s?rand\b"), "std::rand/srand"),
    (re.compile(r"(?<![\w.>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bstd::minstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bstd::default_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\bstd::ranlux\w+\b"), "std::ranlux*"),
    (re.compile(r"\bstd::knuth_b\b"), "std::knuth_b"),
    (re.compile(r"\bstd::\w+_distribution\b"), "std::*_distribution"),
]
THREADING_RE = re.compile(
    r"\bstd::(?:thread|jthread|atomic|mutex|async)\b"
    r"|\bcore::(?:Mutex|LockGuard)\b")
# static / thread_local declaration of a MUTABLE object (const/constexpr/
# constinit are fine — immutable statics cannot couple lanes). static_assert
# and static_cast are single words, so \b(static)\b does not match them.
MUTABLE_STATIC_RE = re.compile(
    r"(?:^|[{;]\s*|\s)(?:inline\s+)?"
    r"(?:static\s+thread_local|thread_local\s+static|static|thread_local)\s+"
    r"(?!const\b|constexpr\b|constinit\b|inline\s+const)")
# Keywords that start a column-0 line which is definitely NOT a mutable
# namespace-scope object definition.
NS_GLOBAL_SKIP = {
    "const", "constexpr", "constinit", "static", "inline", "extern", "using",
    "typedef", "class", "struct", "enum", "union", "namespace", "template",
    "friend", "return", "public", "private", "protected", "if", "else", "for",
    "while", "switch", "case", "default", "do", "try", "catch", "goto",
}
# Modules whose public headers have been converted to core:: strong types —
# a raw scalar with an id-like/unit-like name there is a regression.
CONVERTED_MODULES = {
    "core", "net", "flowpulse", "ctrl", "baseline", "exp", "transport",
    "collective", "daemon",
}
# Modules that legitimately talk to the outside world: OS I/O (sockets,
# epoll, fds) and wall clocks are their job, not a determinism leak. The
# simulation core must never join this set.
REALTIME_MODULES = {"daemon"}
OS_IO_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](?:sys/(?:socket|epoll|eventfd|select|un|uio)\.h'
    r"|netinet/[\w.]+|arpa/inet\.h|poll\.h|fcntl\.h|unistd\.h"
    r'|netdb\.h)[>"]')
RAW_INT_TYPE = (r"(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t"
                r"|unsigned(?:\s+(?:int|long(?:\s+long)?))?"
                r"|(?<!unsigned )int|long(?:\s+long)?)")
RAW_SCALAR_ID_RE = re.compile(
    rf"\b{RAW_INT_TYPE}\s+"
    r"(\w*(?:port|host|leaf|spine|link|bytes)\w*)\s*(?:[;,)={{]|$)")
# Count-like names a raw integer is right for: num_uplinks, retx_count,
# hosts_per_leaf, and plurals (uplinks). *bytes* is never count-like —
# the plural 's' is part of the unit name core::Bytes replaces.
COUNT_LIKE_RE = re.compile(r"^(?:num_|n_)|_count_?$|_per_|^\w*(?<!byte)s_?$")
STRONG_ID_NAMES = r"(?:HostId|LeafId|SpineId|PortId|PortIndex|UplinkIndex|IterIndex|LinkId)"
STRONGID_CAST_RE = re.compile(
    rf"\bstatic_cast\s*<\s*(?:\w+::)*{STRONG_ID_NAMES}\s*>")
FLOAT_DECL_RE = re.compile(r"\b(?:float|double)\s+(\w+)\s*(?:;|=|\{)")
ACCUM_RE = re.compile(r"(?<![\w.>])(\w+)\s*[+\-]\*?=")
# A mutable member that is not a mutex: locking a const object is the one
# sanctioned use of `mutable` (paired with FP_GUARDED_BY, the analysis
# still proves every access locked).
MUTABLE_MEMBER_RE = re.compile(r"^\s*mutable\s+(?!core::Mutex\b|std::mutex\b)")
# The raw-scalar serialization-time math: only its definition (sim/time.h)
# may spell it; everything else goes through the strong-typed
# core::serialization_time(Bytes, GbitsPerSec).
RAW_SERIALIZATION_RE = re.compile(
    r"\b(?:sim::)?detail::serialization_time\s*\("
    r"|\bsim::serialization_time\s*\(")


def ns_mutable_global(code: str) -> str | None:
    """Identifier of a column-0 namespace-scope mutable object definition.

    Relies on the repo's clang-format style: namespace contents are NOT
    indented, so any column-0 declaration is namespace scope. Multi-line
    declarations and initializer parens are not recognized — the post-build
    nm symbol audit (tools/check_mutable_symbols.cmake) backstops whatever
    this line-level heuristic cannot see.
    """
    if not code or code[0] in " \t}#":
        return None
    line = code.strip()
    if not line.endswith(";"):
        return None
    if line.startswith("inline "):
        line = line[len("inline "):]
    first = re.match(r"[A-Za-z_]\w*", line)
    if not first or first.group(0) in NS_GLOBAL_SKIP:
        return None
    # A '(' before any '=' marks a function declaration/definition, not an
    # object (initializer parens on globals do not occur in this codebase).
    eq = line.find("=")
    paren = line.find("(")
    if paren != -1 and (eq == -1 or paren < eq):
        return None
    head = line[:eq] if eq != -1 else line[:-1]
    head = head.split("{")[0]
    m = re.search(r"(\w+)\s*(?:\[[^\]]*\])?\s*$", head)
    if m is None or m.group(1) == first.group(0):  # lone token: not a decl
        return None
    return m.group(1)


def strip_code(line: str, in_block: bool) -> tuple[str, bool]:
    """Blank out comments and string/char literals, preserving length."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if in_block:
            if line.startswith("*/", i):
                in_block = False
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif line.startswith("//", i):
            out.append(" " * (n - i))
            break
        elif line.startswith("/*", i):
            in_block = True
            out.append("  ")
            i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                elif line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out), in_block


class File:
    def __init__(self, path: Path):
        self.path = path
        self.raw = path.read_text(encoding="utf-8", errors="replace").splitlines()
        self.code: list[str] = []
        in_block = False
        for line in self.raw:
            stripped, in_block = strip_code(line, in_block)
            self.code.append(stripped)
        # waivers[lineno (1-based)] = {rule: (directive_lineno, justification)}
        self.waivers: dict[int, dict[int, str]] = {}
        self.errors: list[tuple[int, str, str]] = []
        self._collect_waivers()

    def _collect_waivers(self) -> None:
        self.waiver_map: dict[int, dict[str, str]] = {}
        pending: dict[str, str] = {}
        for idx, raw in enumerate(self.raw):
            lineno = idx + 1
            m = DIRECTIVE_RE.search(raw)
            code = self.code[idx].strip()
            if m:
                rule, justification = m.group(1), (m.group(2) or "").strip()
                if rule not in RULES:
                    self.errors.append(
                        (lineno, "bad-waiver",
                         f"unknown detlint rule '{rule}' in waiver"))
                elif not justification:
                    self.errors.append(
                        (lineno, "bad-waiver",
                         f"waiver for '{rule}' has no justification"))
                elif code:  # same-line waiver
                    self.waiver_map.setdefault(lineno, {})[rule] = justification
                else:  # waiver in a comment block: applies to next code line
                    pending[rule] = justification
            elif code:
                if pending:
                    self.waiver_map.setdefault(lineno, {}).update(pending)
                    pending = {}
            elif not raw.strip():
                pending = {}  # blank line detaches a pending waiver

    def waived(self, lineno: int, rule: str) -> bool:
        return rule in self.waiver_map.get(lineno, {})

    def report(self, lineno: int, rule: str, message: str) -> None:
        if rule != "bad-waiver" and self.waived(lineno, rule):
            return
        self.errors.append((lineno, rule, message))


def collect_unordered_idents(files: list[File]) -> set[str]:
    idents: set[str] = set()
    for f in files:
        for code in f.code:
            for m in UNORDERED_IDENT_RE.finditer(code):
                idents.add(m.group(1))
    return idents


def module_of(path: Path) -> str | None:
    """The src/<module>/ a file lives in, or None outside src/."""
    parts = path.parts
    for i, part in enumerate(parts[:-1]):
        if part == "src":
            return parts[i + 1] if parts[i + 1] != path.name else None
    return None


def lint_file(f: File, unordered_idents: set[str]) -> None:
    parallel_file = any(THREADING_RE.search(code) for code in f.code)
    module = module_of(f.path)
    realtime = module in REALTIME_MODULES
    converted_header = (module in CONVERTED_MODULES
                        and f.path.suffix in {".h", ".hpp"})
    float_idents: set[str] = set()
    if parallel_file:
        for code in f.code:
            for m in FLOAT_DECL_RE.finditer(code):
                float_idents.add(m.group(1))

    for idx, code in enumerate(f.code):
        lineno = idx + 1

        if UNORDERED_DECL_RE.search(code):
            f.report(lineno, "unordered",
                     "unordered container in simulation code: hash order can "
                     "leak into results; use std::map/std::set or waive with "
                     "a justification that it is never iterated")

        for m in RANGE_FOR_RE.finditer(code):
            if m.group(1) in unordered_idents:
                f.report(lineno, "unordered-iteration",
                         f"range-for over '{m.group(1)}', declared as an "
                         "unordered container: iteration order is hash order")
        for m in BEGIN_RE.finditer(code):
            if m.group(1) in unordered_idents:
                f.report(lineno, "unordered-iteration",
                         f"begin() on '{m.group(1)}', declared as an "
                         "unordered container: iteration order is hash order")

        if POINTER_KEY_RE.search(code):
            f.report(lineno, "pointer-key",
                     "container keyed by pointer: pointer order is "
                     "allocation order and varies across runs")

        if not realtime:
            for pattern, what in WALL_CLOCK_RES:
                if pattern.search(code):
                    f.report(lineno, "wall-clock",
                             f"{what}: simulation state must advance only on "
                             "sim::Time (steady_clock may be waived for "
                             "reporting-only wall durations)")

        # Match the raw line (quoted includes are blanked in code), but only
        # on lines that are live preprocessor directives, so a commented-out
        # include does not flag.
        if (not realtime and code.lstrip().startswith("#")
                and OS_IO_INCLUDE_RE.search(f.raw[idx])):
            f.report(lineno, "os-io",
                     "OS I/O header outside a realtime module: simulation "
                     "code must never touch sockets/epoll/fds; only "
                     "src/daemon (the flowpulsed transport) may")

        for pattern, what in BANNED_RNG_RES:
            if pattern.search(code):
                f.report(lineno, "banned-rng",
                         f"{what}: all randomness must flow from the seeded "
                         "sim::Rng")

        if converted_header:
            for m in RAW_SCALAR_ID_RE.finditer(code):
                name = m.group(1)
                if COUNT_LIKE_RE.search(name):
                    continue
                f.report(lineno, "raw-scalar-id",
                         f"raw integer '{name}' in a converted module's "
                         "public header: use the net::*Id / core:: unit "
                         "type so mix-ups stay compile errors")

        if module is not None and module != "core":
            if STRONGID_CAST_RE.search(code):
                f.report(lineno, "strongid-cast",
                         "static_cast to a strong id type outside core/: "
                         "construct at the boundary (e.g. LeafId{raw}) so "
                         "the id-space crossing is visible")

        m = MUTABLE_STATIC_RE.search(code)
        if m:
            # The first structural character after the keyword decides what
            # was declared: '(' is a function, anything else is an object.
            structural = re.search(r"[(;={]", code[m.end():])
            if structural and structural.group(0) != "(":
                f.report(lineno, "mutable-global",
                         "static/thread_local mutable object: hidden "
                         "cross-lane (or scheduling-dependent per-lane) "
                         "state — hoist it into a member or parameter so "
                         "ownership is explicit")

        ident = ns_mutable_global(code)
        if ident is not None:
            f.report(lineno, "mutable-global",
                     f"namespace-scope mutable global '{ident}': shared "
                     "state every lane can reach — hoist it into the object "
                     "that owns the lifetime, or waive with the access "
                     "protocol that keeps it deterministic")

        if not (module == "sim" and f.path.name == "time.h"):
            if RAW_SERIALIZATION_RE.search(code):
                f.report(lineno, "raw-serialization-time",
                         "raw-scalar serialization-time math outside its "
                         "definition: call core::serialization_time(Bytes, "
                         "GbitsPerSec) so byte counts and rates stay "
                         "strong-typed")

        if converted_header or (module in CONVERTED_MODULES
                                and f.path.suffix in {".cc", ".cpp"}):
            if MUTABLE_MEMBER_RE.search(code):
                f.report(lineno, "mutable-member",
                         "mutable member in a converted module: mutation "
                         "behind a const interface hides shared state; "
                         "waive with why it is per-instance and "
                         "deterministic (mutable mutexes are exempt)")

        if parallel_file:
            for m in ACCUM_RE.finditer(code):
                if m.group(1) in float_idents:
                    f.report(lineno, "par-float-accum",
                             f"accumulation into float '{m.group(1)}' in a "
                             "threaded file: float addition is not "
                             "associative, merge order must be serial and "
                             "deterministic")


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    paths: list[Path] = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            paths.extend(sorted(q for q in p.rglob("*")
                                if q.suffix in {".h", ".hpp", ".cc", ".cpp"}))
        elif p.is_file():
            paths.append(p)
        else:
            print(f"detlint: no such path: {p}", file=sys.stderr)
            return 2

    files = [File(p) for p in paths]
    unordered_idents = collect_unordered_idents(files)
    for f in files:
        lint_file(f, unordered_idents)

    count = 0
    for f in files:
        for lineno, rule, message in sorted(f.errors):
            print(f"{f.path}:{lineno}: error[{rule}]: {message}")
            count += 1
    if count:
        print(f"detlint: {count} error(s) in {len(files)} file(s)")
        return 1
    print(f"detlint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
