#!/usr/bin/env python3
"""Unit self-tests for the substrate: lexer and scope tracker.

Runnable under any Python >= 3.8 (the CI self-test job runs it under both
the system interpreter and a pinned 3.8) — everything here is stdlib-only
assertions, no framework.
"""

import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

import lexer  # noqa: E402
import scopes  # noqa: E402

CHECKS = []


def check(fn):
    CHECKS.append(fn)
    return fn


def toks(src):
    return lexer.tokenize(src)


def texts(src, kind=None):
    return [t.text for t in toks(src)
            if kind is None or t.kind == kind]


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------

@check
def lexer_basic_kinds():
    ts = toks("int x = 42; // done\n")
    kinds = [(t.kind, t.text) for t in ts]
    assert (lexer.ID, "int") in kinds
    assert (lexer.ID, "x") in kinds
    assert (lexer.NUM, "42") in kinds
    assert any(k == lexer.COMMENT for k, _ in kinds)


@check
def lexer_maximal_munch():
    ts = texts("a <<= b; c <=> d; e ->* f; g ... h;")
    assert "<<=" in ts and "<=>" in ts and "->*" in ts and "..." in ts


@check
def lexer_string_escapes_and_raw():
    ts = toks(r'auto s = "a\"b"; auto r = R"(x "y" z)";')
    strs = [t.text for t in ts if t.kind == lexer.STR]
    assert len(strs) == 2
    assert strs[1].startswith('R"(') and strs[1].endswith(')"')


@check
def lexer_digit_separators():
    ts = toks("auto t = 1'000'000; auto c = 'x';")
    nums = [t.text for t in ts if t.kind == lexer.NUM]
    assert "1'000'000" in nums
    chrs = [t.text for t in ts if t.kind == lexer.CHR]
    assert "'x'" in chrs


@check
def lexer_block_comment_lines():
    ts = toks("a\n/* one\n   two */\nb\n")
    b = next(t for t in ts if t.text == "b")
    assert b.line == 4


@check
def lexer_pp_tracking():
    ts = toks("#define FOO(x) \\\n  ((x) + 1)\nint y;\n")
    assert all(t.pp for t in ts if t.text in ("FOO", "x", "1"))
    y = next(t for t in ts if t.text == "y")
    assert not y.pp


@check
def lexer_never_raises_on_junk():
    lexer.tokenize("\"unterminated\n'\x00\x01 /* open forever")


# ---------------------------------------------------------------------------
# scopes
# ---------------------------------------------------------------------------

def analyze(src):
    return scopes.analyze(toks(src))


@check
def scopes_method_constness():
    fa = analyze(
        "struct C {\n"
        "  int bump();\n"
        "  int peek() const;\n"
        "  int inline_body() const { return 1; }\n"
        "};\n")
    assert fa.method_decls["bump"] == [False]
    assert fa.method_decls["peek"] == [True]
    assert fa.method_decls["inline_body"] == [True]


@check
def scopes_lambda_context_strict():
    fa = analyze(
        "void f(S& sim, S& peer, long d) {\n"
        "  sim.post_remote(peer, d, [&] { });\n"
        "}\n")
    (site,) = fa.lambda_sites
    assert "post_remote" in site.contexts
    assert site.captures[0].mode == "ref-default"


@check
def scopes_lambda_pointer_capture():
    fa = analyze(
        "void f(S& sim, S& peer, long d) {\n"
        "  P* p = nullptr;\n"
        "  P q;\n"
        "  sim.post_remote(peer, d, [p] { });\n"
        "  sim.post_remote(peer, d, [q] { });\n"
        "}\n")
    by_ptr = {site.captures[0].name: site.captures[0].is_pointer
              for site in fa.lambda_sites}
    assert by_ptr == {"p": True, "q": False}


@check
def scopes_wrapper_init_context():
    fa = analyze(
        "void f(S& sim, S& peer, long d) {\n"
        "  sim.post_remote(peer, d, LaneFn{[this] { }});\n"
        "}\n")
    (site,) = fa.lambda_sites
    assert "post_remote" in site.contexts and "LaneFn" in site.contexts
    assert site.captures[0].mode == "this"


@check
def scopes_context_closes_with_paren():
    fa = analyze(
        "void f(S& sim, long d) {\n"
        "  sim.schedule_in(d, [x] { });\n"
        "  auto after = [&] { };\n"
        "}\n")
    assert fa.lambda_sites[0].contexts == ("schedule_in",)
    assert fa.lambda_sites[1].contexts == ()


@check
def scopes_subscript_is_not_lambda():
    fa = analyze("void f() { int a[3]; a[0] = 1; [[maybe_unused]] int b; }\n")
    assert fa.lambda_sites == ()


@check
def scopes_macro_records():
    recs = scopes.macro_arg_records(toks(
        "void f(C& c, int i) {\n"
        "  FP_AUDIT(i++ < 3, \"m\");\n"
        "  assert(c.bump() > 0);\n"
        "  FP_TRACE(sim, k, i == 2);\n"
        "}\n"))
    by_macro = {r.macro: r for r in recs}
    assert [op for _, op in by_macro["FP_AUDIT"].ops] == ["++"]
    assert [nm for _, nm in by_macro["assert"].calls] == ["bump"]
    assert by_macro["FP_TRACE"].ops == ()  # '==' is not an assignment


@check
def scopes_define_body_is_skipped():
    recs = scopes.macro_arg_records(toks(
        "#define WRAP(c) FP_AUDIT((c).bump() > 0, \"m\")\n"
        "int x;\n"))
    assert recs == []


def main() -> int:
    failed = 0
    for fn in CHECKS:
        try:
            fn()
        except AssertionError:
            failed += 1
            import traceback
            print("FAIL {}".format(fn.__name__))
            traceback.print_exc()
    if failed:
        print("selftest: {} of {} checks failed".format(failed, len(CHECKS)))
        return 1
    print("selftest: OK — {} checks on Python {}.{}.{}".format(
        len(CHECKS), *sys.version_info[:3]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
