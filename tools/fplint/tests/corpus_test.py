#!/usr/bin/env python3
"""Corpus test: every rule, positive and negative, against inline markers.

Each immediate subdirectory of corpus/ is one case, linted in isolation
(cross-TU indexes are built per case). Expectations are inline markers in
the snippet sources:

    // ... expect[<rule>]        a finding of <rule> on THIS line
    // ... expect[<rule>]@N      a finding of <rule> on line N of this file
                                 (for findings on lines that cannot carry
                                 their own comment, e.g. a bad waiver
                                 whose justification must stay empty)

The comparison is bidirectional: a missing expected finding fails, and so
does any unexpected finding — negative cases are simply case directories
with no markers at all.
"""

import re
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent))

import engine  # noqa: E402
import legacy  # noqa: E402

EXPECT_RE = re.compile(r"expect\[([\w-]+)\](?:@(\d+))?")


def expected_for(case: Path):
    exp = set()
    for f in sorted(case.rglob("*")):
        if not f.is_file() or f.suffix not in legacy.SUFFIXES:
            continue
        for lineno, line in enumerate(f.read_text().splitlines(), 1):
            for m in EXPECT_RE.finditer(line):
                at = int(m.group(2)) if m.group(2) else lineno
                exp.add((str(f), at, m.group(1)))
    return exp


def actual_for(case: Path):
    paths, err = legacy.collect_paths([str(case)])
    if err:
        raise SystemExit("corpus_test: " + err)
    results = engine.run(paths, engine.FactCache(None))
    return {(disp, line, rule)
            for disp, findings in results
            for line, rule, _ in findings}


def main() -> int:
    corpus = HERE / "corpus"
    cases = sorted(d for d in corpus.iterdir() if d.is_dir())
    if not cases:
        print("corpus_test: no cases found under", corpus)
        return 1
    failures = 0
    total_expected = 0
    rules_covered = set()
    for case in cases:
        exp = expected_for(case)
        act = actual_for(case)
        total_expected += len(exp)
        rules_covered.update(rule for _, _, rule in exp)
        missing = exp - act
        extra = act - exp
        if missing or extra:
            failures += 1
            print("FAIL {}".format(case.name))
            for f, line, rule in sorted(missing):
                print("  missing: {}:{}: {}".format(f, line, rule))
            for f, line, rule in sorted(extra):
                print("  extra:   {}:{}: {}".format(f, line, rule))
    # Every rule the engine knows (plus the bad-waiver meta finding) must
    # have at least one firing snippet — a rule nothing exercises is dead.
    all_rules = set(legacy.ALL_RULES) | {"bad-waiver"}
    unexercised = all_rules - rules_covered
    if unexercised:
        failures += 1
        print("FAIL rule-coverage: no positive snippet fires: "
              + ", ".join(sorted(unexercised)))
    if failures:
        print("corpus_test: {} failure(s)".format(failures))
        return 1
    print("corpus_test: OK — {} case(s), {} expected finding(s), "
          "{} rule(s) covered".format(len(cases), total_expected,
                                      len(rules_covered)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
