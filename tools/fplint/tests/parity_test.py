#!/usr/bin/env python3
"""Byte-identical parity: fplint --compat-detlint vs the frozen legacy engine.

Runs both over the live src/ tree and diffs stdout byte-for-byte (and the
exit statuses). legacy_detlint.py is a verbatim copy of tools/detlint.py
as it was before it became a shim — the ported rules' regexes, messages,
waiver semantics, and output format must reproduce it exactly, forever.
"""

import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent.parent


def run(cmd):
    p = subprocess.run(cmd, cwd=str(REPO), stdout=subprocess.PIPE,
                       stderr=subprocess.PIPE)
    return p.returncode, p.stdout, p.stderr


def main() -> int:
    target = sys.argv[1] if len(sys.argv) > 1 else "src"
    legacy_rc, legacy_out, legacy_err = run(
        [sys.executable, str(HERE / "legacy_detlint.py"), target])
    fplint_rc, fplint_out, fplint_err = run(
        [sys.executable, str(HERE.parent), "--no-cache", "--compat-detlint",
         target])
    if legacy_err:
        sys.stderr.write("legacy stderr:\n" + legacy_err.decode())
    if fplint_err:
        sys.stderr.write("fplint stderr:\n" + fplint_err.decode())
    if legacy_rc != fplint_rc:
        print("FAIL: exit status diverged: legacy={} fplint={}".format(
            legacy_rc, fplint_rc))
        return 1
    if legacy_out != fplint_out:
        print("FAIL: output diverged (legacy vs fplint --compat-detlint):")
        legacy_lines = legacy_out.decode().splitlines()
        fplint_lines = fplint_out.decode().splitlines()
        import difflib
        for line in difflib.unified_diff(legacy_lines, fplint_lines,
                                         "legacy", "fplint", lineterm=""):
            print(line)
        return 1
    print("parity_test: OK — byte-identical over '{}' ({} line(s), "
          "exit {})".format(target, len(legacy_out.splitlines()), legacy_rc))
    return 0


if __name__ == "__main__":
    sys.exit(main())
