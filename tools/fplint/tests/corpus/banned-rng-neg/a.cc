// The seeded project Rng and lookalike names must not trip the rule.
struct Rng {
  explicit Rng(unsigned seed) : state_(seed) {}
  unsigned next() { return state_ = state_ * 1664525u + 1013904223u; }
  unsigned state_;
};

unsigned operand(Rng& rng) { return rng.next(); }  // "rand" inside a word
