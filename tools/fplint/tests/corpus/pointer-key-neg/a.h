#pragma once
#include <map>

struct Node;
struct Owners {
  std::map<int, Node*> by_id_;  // pointer VALUES are fine; keys are not
};
