#pragma once
#include <cstdint>

namespace demo {

struct LinkConfig {
  std::uint32_t port = 0;           // expect[raw-scalar-id]
  std::uint64_t bytes_on_wire = 0;  // expect[raw-scalar-id]
  int num_hosts = 0;                // count-like names are exempt
};

void wire(std::uint16_t host_id);   // expect[raw-scalar-id]

}  // namespace demo
