// detlint: ok(nosuchrule): a typo in the rule id — expect[bad-waiver]
// fplint: ok(layering)
// expect[bad-waiver]@2 — the directive above has no justification (and
// must stay bare: any text after the rule WOULD be its justification)
int f();
// fplint: ok(stale-waiver): trying to silence the meta rule — expect[bad-waiver]
int g();
