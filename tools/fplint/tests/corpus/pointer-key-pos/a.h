#pragma once
#include <map>
#include <unordered_map>

struct Node;
struct Owners {
  std::map<const Node*, int> rank_;           // expect[pointer-key]
  std::unordered_map<Node*, int> index_;      // expect[pointer-key] expect[unordered]
};
