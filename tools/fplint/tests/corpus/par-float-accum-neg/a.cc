// No threading primitives in this file: serial float accumulation is fine.
double tally(const double* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += xs[i];
  return acc;
}
