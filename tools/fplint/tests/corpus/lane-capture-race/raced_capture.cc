// Deliberately racy: the positive control tying the fplint lane-capture
// rule to a real ThreadSanitizer report. Lane 0 increments a counter it
// effectively owns while posting a by-reference callable that makes lane 1
// increment the same counter inside the same PDES round — exactly the bug
// class the rule exists to stop. check_raced_capture.sh compiles this file
// under -fsanitize=thread and asserts tsan reports the race; the corpus
// test asserts fplint flags the capture below. Never linked into the
// production build.
#include <cstdio>

#include "sim/event_lane.h"
#include "sim/lane_runner.h"

namespace {

struct Ctx {
  flowpulse::sim::EventLane* a = nullptr;
  flowpulse::sim::EventLane* b = nullptr;
  flowpulse::sim::Time step;
  long hits = 0;
};

void pump(Ctx* ctx) {
  namespace sim = flowpulse::sim;
  Ctx& c = *ctx;
  ++c.hits;  // lane 0's touch of the counter...
  // ...and lane 1's, through the reference smuggled by '[&]': both run
  // inside the same round, on different worker threads, unsynchronized.
  c.a->post_remote(*c.b, c.step,
                   sim::LaneFn{[&] { ++c.hits; }});  // expect[lane-capture]
}

}  // namespace

int main() {
  namespace sim = flowpulse::sim;
  sim::EventLane lane_a{1};
  sim::EventLane lane_b{2};
  lane_a.configure_lane(0, 2);
  lane_b.configure_lane(1, 2);
  Ctx storage;
  Ctx* ctx = &storage;
  ctx->a = &lane_a;
  ctx->b = &lane_b;
  ctx->step = sim::Time::microseconds(1);
  // Thousands of events per round: lane 0 spends real time inside its
  // window, so the second worker thread reliably claims lane 1 and the two
  // lanes' unsynchronized increments genuinely overlap.
  const int kRounds = 50;
  const int kPerRound = 5000;
  for (int r = 1; r <= kRounds; ++r) {
    for (int e = 0; e < kPerRound; ++e) {
      lane_a.schedule_at(ctx->step * r, [ctx] { pump(ctx); });
    }
  }
  sim::LaneRunner runner{{&lane_a, &lane_b}, ctx->step, 0};
  runner.run();
  std::printf("hits=%ld of %d (lost updates are the point)\n", storage.hits,
              2 * kRounds * kPerRound);
  return 0;
}
