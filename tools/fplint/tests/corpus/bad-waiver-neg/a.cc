#include <random>

int seed() {
  std::random_device rd;  // detlint: ok(banned-rng): corpus fixture — entropy for a one-shot tool
  return static_cast<int>(rd());
}
