#pragma once
#include "exp/scenario.h"  // expect[layering]
#include "vendor/tune.h"   // expect[layering]
