#pragma once
#include "baseline/predict.h"  // expect[layering]
