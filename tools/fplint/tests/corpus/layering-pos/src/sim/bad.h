#pragma once
#include "obs/trace.h"  // expect[layering]
