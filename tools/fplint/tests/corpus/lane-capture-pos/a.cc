struct Packet {
  int payload = 0;
};

namespace demo {

void hop(sim::Simulator& sim, sim::Simulator& peer, long delay) {
  int credits = 0;
  Packet* inflight = nullptr;
  sim.post_remote(peer, delay, [&] { ++credits; });              // expect[lane-capture]
  sim.post_remote(peer, delay, [&credits] { ++credits; });      // expect[lane-capture]
  sim.post_remote(peer, delay, [inflight] { (void)inflight; }); // expect[lane-capture]
}

struct Device {
  void deliver();
  void send(sim::Simulator& sim, sim::Simulator& peer, long delay) {
    sim.post_remote(peer, delay, sim::LaneFn{[this] { deliver(); }});  // expect[lane-capture]
  }
  void defer(sim::Simulator& sim, long horizon) {
    int seq = 0;
    sim.schedule_in(horizon, [&seq] { ++seq; });  // expect[lane-capture]
  }
};

}  // namespace demo
