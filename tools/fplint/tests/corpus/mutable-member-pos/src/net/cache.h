#pragma once

namespace demo {

class RouteCache {
 public:
  int lookup(int key) const;

 private:
  mutable int hits_ = 0;       // expect[mutable-member]
  mutable bool warm_ = false;  // expect[mutable-member]
};

}  // namespace demo
