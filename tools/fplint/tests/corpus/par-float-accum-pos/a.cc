#include <mutex>

std::mutex g_mu;  // detlint: ok(mutable-global): corpus fixture — the threading marker itself

double tally(const double* xs, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += xs[i];  // expect[par-float-accum]
  double neg = 0.0;
  neg -= acc;                                // expect[par-float-accum]
  return neg;
}
