namespace demo {

struct Counter {
  int bump();            // non-const: mutates
  int peek() const;
  int value_ = 0;
};

void check(Counter& c, int i) {
  FP_AUDIT(i++ < 10, "ledger", "obj", 0, 0, "cap");      // expect[variant-divergence]
  FP_AUDIT(c.bump() > 0, "ledger", "obj", 0, 0, "adv");  // expect[variant-divergence]
  assert(--i >= 0);                                      // expect[variant-divergence]
}

}  // namespace demo
