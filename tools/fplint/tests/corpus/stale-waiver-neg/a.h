#pragma once
#include <unordered_map>

struct Holder {
  // detlint: ok(unordered): bounded lookup table, never iterated
  std::unordered_map<int, int> by_key_;
};
