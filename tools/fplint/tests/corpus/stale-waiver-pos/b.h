#pragma once

struct Tail {
  int x_ = 0;
};
// detlint: ok(wall-clock): dangles at end of file, attaches to nothing — expect[stale-waiver]
