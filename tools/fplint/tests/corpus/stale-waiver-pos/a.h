#pragma once
#include <map>

struct Holder {
  // detlint: ok(unordered): claims a hash table, but this is std::map — expect[stale-waiver]
  std::map<int, int> ordered_;
  std::map<int, int> other_;  // fplint: ok(pointer-key): int keys, nothing to hold back — expect[stale-waiver]
};
