#include <chrono>
#include <ctime>

long stamps() {
  auto t0 = std::chrono::steady_clock::now();     // expect[wall-clock]
  long t1 = ::time(nullptr);                      // expect[wall-clock]
  (void)t0;
  return t1;
}
