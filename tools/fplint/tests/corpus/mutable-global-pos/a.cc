int g_iterations = 0;  // expect[mutable-global]

int bump() {
  static int s_calls = 0;  // expect[mutable-global]
  return ++s_calls + g_iterations;
}
