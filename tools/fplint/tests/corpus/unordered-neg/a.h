#pragma once
#include <map>
#include <set>

// An ordered map is fine, and the word unordered_map in a comment or a
// string must not trip the rule.
struct Index {
  std::map<int, int> by_id_;
  std::set<int> seen_;
  const char* doc_ = "prefer std::map over std::unordered_map";
};
