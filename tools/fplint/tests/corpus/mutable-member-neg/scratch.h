#pragma once
// Outside src/ there is no module, so the converted-module rule is off.
struct Scratch {
  mutable int tmp_ = 0;
};
