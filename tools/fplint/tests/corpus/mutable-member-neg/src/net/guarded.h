#pragma once

namespace demo {

class Guarded {
 private:
  mutable core::Mutex mu_;     // locking a const object: the sanctioned use
  mutable std::mutex raw_mu_;  // the std spelling is equally exempt
};

}  // namespace demo
