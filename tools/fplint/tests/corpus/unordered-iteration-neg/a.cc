#include <map>
#include <vector>

std::map<int, int> scores_map;  // detlint: ok(mutable-global): corpus fixture for the iteration negative

int sum(const std::vector<int>& values) {
  int s = 0;
  for (int v : values) s += v;
  // A find()-sentinel comparison uses end() without begin(): not iteration.
  if (scores_map.find(3) != scores_map.end()) s += 1;
  return s;
}
