namespace demo {

int plain(net::LeafId leaf, double frac) {
  net::LeafId copy{leaf.v()};            // brace construction is the idiom
  return copy.v() + static_cast<int>(frac);  // casts to plain types are fine
}

}  // namespace demo
