// core/ is the sanctioned id-space boundary: casts are its job.
namespace demo {

int from_wire(long raw) {
  auto leaf = static_cast<net::LeafId>(raw);
  return leaf.v();
}

}  // namespace demo
