#pragma once
#include <vector>
#include "core/units.h"
#include "helper.h"
#include "net/ids.h"
#include "sim/time.h"
