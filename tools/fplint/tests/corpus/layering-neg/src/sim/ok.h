#pragma once
// A commented-out cross-layer include must not flag:
// #include "obs/trace.h"
