#pragma once
#include "flowpulse/system.h"
