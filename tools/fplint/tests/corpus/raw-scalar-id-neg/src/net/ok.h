#pragma once
#include <cstdint>

namespace demo {

struct Ok {
  std::uint32_t retx_count_ = 0;  // count-like: raw integer is right
  int hosts_per_leaf = 0;         // _per_ ratio: exempt
  std::uint64_t uplinks = 0;      // plural count: exempt
};

}  // namespace demo
