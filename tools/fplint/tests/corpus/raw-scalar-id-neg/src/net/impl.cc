// The rule covers public headers only: raw scalars inside a .cc are the
// implementation's private business.
int next_port(int port) { return port + 1; }
