constexpr int kMaxRetries = 3;
const char* const kName = "fplint";
inline constexpr double kAlpha = 0.25;

int current(int base) {
  static const int kBias = 7;  // immutable statics cannot couple lanes
  static_assert(sizeof(int) >= 4, "assumed below");
  return base + kBias + static_cast<int>(kAlpha);
}
