#pragma once
#include <sys/socket.h>  // expect[os-io]
#include <poll.h>        // expect[os-io]
