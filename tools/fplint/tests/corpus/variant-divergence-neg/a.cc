namespace demo {

struct Counter {
  int bump();
  int peek() const;
  int value_ = 0;
};

// A macro DEFINITION is preprocessor text: its body is the expansion's
// problem, checked at each call site, never at the define.
#define CHECK_BUMP(c) FP_AUDIT((c).bump() > 0, "ledger", "o", 0, 0, "m")

void check(const Counter& c, int i, const Name& tag) {
  FP_AUDIT(c.peek() == 0, "ledger", "obj", 0, 0, "cmp");  // const accessor
  assert(i == 0);                                          // == is not =
  // Unresolvable callees (std::, third-party) are assumed const.
  FP_TRACE(sim, kIteration, tag.c_str(), 0, 0, 0, 0.0, "note");
}

}  // namespace demo
