#pragma once
// The definition site itself (src/sim/time.h) is exempt.

namespace flowpulse::sim::detail {

constexpr long serialization_time(unsigned long bytes, double gbps) {
  return static_cast<long>(static_cast<double>(bytes) * 8000.0 / gbps);
}

}  // namespace flowpulse::sim::detail

inline long alias_ps(unsigned long b, double g) {
  return flowpulse::sim::detail::serialization_time(b, g);
}
