namespace demo {

long wire_ps(core::Bytes bytes, core::GbitsPerSec rate) {
  // The strong-typed public API is the sanctioned spelling.
  return core::serialization_time(bytes, rate).ps();
}

}  // namespace demo
