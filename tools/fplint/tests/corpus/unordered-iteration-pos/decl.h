#pragma once
#include <unordered_map>

struct Table {
  // detlint: ok(unordered): corpus fixture — iterated on purpose in use.cc
  std::unordered_map<int, int> scores_;
};
