#include "decl.h"

int sum(const Table& t) {
  int s = 0;
  for (const auto& kv : t.scores_) s += kv.second;  // expect[unordered-iteration]
  auto it = t.scores_.begin();                      // expect[unordered-iteration]
  return s + it->second;
}
