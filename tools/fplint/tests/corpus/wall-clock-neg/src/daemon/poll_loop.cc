// Realtime module: wall clocks are the daemon's job, not a leak.
#include <chrono>

double wall_ms() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch()).count();
}
