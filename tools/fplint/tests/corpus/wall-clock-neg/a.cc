struct Sim {
  long time() const { return t_; }  // a member named time() is not ::time()
  long t_ = 0;
};

long runtime(int k);  // ...nor is an identifier merely ending in "time"

long f(const Sim& s) { return s.time() + runtime(2); }
