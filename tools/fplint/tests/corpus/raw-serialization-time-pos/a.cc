namespace demo {

long wire_ps(unsigned long bytes, double gbps) {
  auto t = sim::detail::serialization_time(bytes, gbps);  // expect[raw-serialization-time]
  auto u = sim::serialization_time(bytes, gbps);          // expect[raw-serialization-time]
  return t.ps() + u.ps();
}

}  // namespace demo
