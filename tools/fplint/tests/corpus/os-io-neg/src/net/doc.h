#pragma once
// Prose mentioning <sys/socket.h>, or a commented-out
// #include <sys/socket.h>
// must not flag: the rule gates on live preprocessor lines.
