#pragma once
// The daemon is a realtime module: sockets and fds are its whole job.
#include <sys/epoll.h>
#include <unistd.h>
