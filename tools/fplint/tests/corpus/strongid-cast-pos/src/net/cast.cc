namespace demo {

int to_ids(long raw) {
  auto leaf = static_cast<net::LeafId>(raw);   // expect[strongid-cast]
  auto up = static_cast<UplinkIndex>(raw);     // expect[strongid-cast]
  return leaf.v() + up.v();
}

}  // namespace demo
