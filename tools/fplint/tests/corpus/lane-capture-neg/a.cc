struct Packet {
  int payload = 0;
};

namespace demo {

void hop(sim::Simulator& sim, sim::Simulator& peer, long delay) {
  Packet pkt;
  int budget = 0;
  // By-value copies of plain objects are exactly what the mailbox wants.
  sim.post_remote(peer, delay, [pkt] { (void)pkt; });
  sim.post_remote(peer, delay, [budget] { (void)budget; });
  // Deferred same-lane work may carry pointers: no concurrency involved.
  Packet* head = &pkt;
  sim.schedule_in(delay, [head] { head->payload = 1; });
  // A reference lambda OUTSIDE any lane/defer context is ordinary code.
  auto walk = [&] { ++budget; };
  walk();
}

}  // namespace demo
