#include <random>

int roll() {
  std::random_device rd;                        // expect[banned-rng]
  std::mt19937 gen(rd());                       // expect[banned-rng]
  std::uniform_int_distribution<int> d(1, 6);   // expect[banned-rng]
  return d(gen);
}
