#pragma once
#include <unordered_map>
#include <unordered_set>

struct Index {
  std::unordered_map<int, int> by_id_;  // expect[unordered]
  std::unordered_set<int> seen_;        // expect[unordered]
};
