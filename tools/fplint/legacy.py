"""Legacy line view and waiver scanner.

The twelve ported detlint rules run on exactly the line view the regex
engine used: comments and string/char literals blanked out
length-preservingly, line by line, with block comments tracked across
lines. `strip_code` below is a verbatim port of the legacy algorithm —
including its known approximations (raw strings treated as ordinary
strings, digit separators treated as char literals). Byte-identical
findings, forever, is the whole point: the parity ctest compares this
engine against the frozen legacy copy on the live tree, so the ported
rules must agree on ALL inputs, not just today's. New rules use the real
tokenizer (lexer.py) instead.

Waivers
-------
A finding is waived by a justified comment on the same line or on the
comment block immediately above:

    // fplint: ok(<rule>): <non-empty justification>

The historical `// detlint: ok(...)` spelling is accepted as an alias
and remains the convention for the twelve ported rules (it keeps the
frozen legacy engine reading the same waivers in the parity test); new
rules use the `fplint:` spelling, which the legacy engine ignores. An
unknown rule id or an empty justification is itself an error, and so is
waiving the meta-rules (stale-waiver, bad-waiver) — waiver debt must not
be able to hide itself.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple

# Rules the legacy engine knew (waivable, ported byte-identically).
PORTED_RULES = frozenset({
    "unordered",
    "unordered-iteration",
    "pointer-key",
    "wall-clock",
    "banned-rng",
    "par-float-accum",
    "raw-scalar-id",
    "strongid-cast",
    "os-io",
    "mutable-global",
    "mutable-member",
    "raw-serialization-time",
})

# Scope-aware rules only fplint can evaluate (waivable except the meta rule).
SCOPED_RULES = frozenset({
    "lane-capture",
    "variant-divergence",
    "layering",
    "stale-waiver",
})

ALL_RULES = PORTED_RULES | SCOPED_RULES

# Rules that may never be waived: they exist to stop waiver debt from
# accumulating silently, so a waiver against them is self-defeating.
UNWAIVABLE = frozenset({"stale-waiver"})

# fplint accepts both spellings; the legacy engine only ever matched
# `detlint:` (its regex is frozen in tests/legacy_detlint.py), which is
# what --compat-detlint restricts itself to for the parity test.
DIRECTIVE_RE = re.compile(
    r"//\s*(detlint|fplint):\s*ok\(([\w-]+)\)\s*:?\s*(.*\S)?")
LEGACY_DIRECTIVE_RE = re.compile(
    r"//\s*(detlint):\s*ok\(([\w-]+)\)\s*:?\s*(.*\S)?")

SUFFIXES = {".h", ".hpp", ".cc", ".cpp"}


def strip_code(line: str, in_block: bool) -> Tuple[str, bool]:
    """Blank out comments and string/char literals, preserving length.

    Verbatim port of the legacy algorithm (see module docstring).
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if in_block:
            if line.startswith("*/", i):
                in_block = False
                out.append("  ")
                i += 2
            else:
                out.append(" ")
                i += 1
        elif line.startswith("//", i):
            out.append(" " * (n - i))
            break
        elif line.startswith("/*", i):
            in_block = True
            out.append("  ")
            i += 2
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                elif line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                else:
                    out.append(" ")
                    i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out), in_block


def code_lines(raw_lines: List[str]) -> List[str]:
    """The stripped line view of a whole file."""
    out: List[str] = []
    in_block = False
    for line in raw_lines:
        stripped, in_block = strip_code(line, in_block)
        out.append(stripped)
    return out


class Waiver(NamedTuple):
    directive_line: int    # 1-based line holding the `ok(...)` comment
    target_line: int       # 1-based code line the waiver applies to
    rule: str
    justification: str
    spelling: str          # "detlint" or "fplint"
    match_start: int       # column of the directive match on its raw line
    same_line: bool        # waiver shares its line with code


class WaiverScan(NamedTuple):
    waivers: List[Waiver]
    # bad-waiver findings discovered during the scan: (line, rule, message)
    errors: List[Tuple[int, str, str]]


def scan_waivers(raw_lines: List[str], code: List[str],
                 known_rules: frozenset = ALL_RULES,
                 unwaivable: frozenset = UNWAIVABLE,
                 directive_re: "re.Pattern" = DIRECTIVE_RE) -> WaiverScan:
    """Collect waivers with the legacy attachment semantics.

    A same-line waiver applies to its own line; a waiver on a
    comment-only line applies to the next code line; a blank line
    detaches a pending waiver.
    """
    waivers: List[Waiver] = []
    errors: List[Tuple[int, str, str]] = []
    pending: List[Waiver] = []
    for idx, raw in enumerate(raw_lines):
        lineno = idx + 1
        m = directive_re.search(raw)
        code_text = code[idx].strip()
        if m:
            spelling, rule = m.group(1), m.group(2)
            justification = (m.group(3) or "").strip()
            if rule not in known_rules:
                errors.append(
                    (lineno, "bad-waiver",
                     "unknown {} rule '{}' in waiver".format(spelling, rule)))
            elif rule in unwaivable:
                errors.append(
                    (lineno, "bad-waiver",
                     "'{}' may not be waived: the rule exists so waiver "
                     "debt cannot hide itself".format(rule)))
            elif not justification:
                errors.append(
                    (lineno, "bad-waiver",
                     "waiver for '{}' has no justification".format(rule)))
            elif code_text:  # same-line waiver
                waivers.append(Waiver(lineno, lineno, rule, justification,
                                      spelling, m.start(), True))
            else:            # comment-block waiver: applies to next code line
                pending.append(Waiver(lineno, -1, rule, justification,
                                      spelling, m.start(), False))
        elif code_text:
            if pending:
                waivers.extend(w._replace(target_line=lineno) for w in pending)
                pending = []
        elif not raw.strip():
            pending = []  # blank line detaches a pending waiver
    # Pending waivers at EOF never attach: they are trivially stale, but the
    # legacy engine silently dropped them; keep that shape (the stale-waiver
    # rule reports them, since their rule fires on no line).
    waivers.extend(pending)
    return WaiverScan(waivers, errors)


def waiver_map(waivers: List[Waiver]) -> Dict[int, Dict[str, str]]:
    """target line -> {rule: justification}, the legacy lookup shape."""
    out: Dict[int, Dict[str, str]] = {}
    for w in waivers:
        if w.target_line > 0:
            out.setdefault(w.target_line, {})[w.rule] = w.justification
    return out


def module_of(path: Path) -> Optional[str]:
    """The src/<module>/ a file lives in, or None outside src/."""
    parts = path.parts
    for i, part in enumerate(parts[:-1]):
        if part == "src":
            return parts[i + 1] if parts[i + 1] != path.name else None
    return None


def collect_paths(args: List[str]) -> "tuple[List[Path], Optional[str]]":
    """Legacy path collection: dirs recurse (sorted), files pass through.

    Returns (paths, error_message). error_message is non-None on a
    missing path (legacy exit status 2).
    """
    paths: List[Path] = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            paths.extend(sorted(q for q in p.rglob("*")
                                if q.suffix in SUFFIXES))
        elif p.is_file():
            paths.append(p)
        else:
            return [], "no such path: {}".format(p)
    return paths, None
