"""fplint command line.

Usage: python3 tools/fplint [options] <dir-or-file> [more paths...]

Options:
  --sarif FILE       also write findings as SARIF 2.1.0
  --fix              apply mechanical fixes (stale-waiver removal, waiver
                     normalization) before linting
  --compat-detlint   legacy mode: the twelve ported rules only, detlint:
                     waivers only, byte-identical legacy output (used by
                     the parity ctest against the frozen engine)
  --no-cache         ignore and do not write the fact cache
  --cache-dir DIR    fact cache location (default .fplint-cache/)
  --stats            print files/cache/wall-time stats to stderr
  --rules            print the rule table and exit

Exit status: 0 clean, 1 findings, 2 usage error — same contract as the
legacy detlint so ctest and CI wiring carry over unchanged.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List

import engine
import fix as fixmod
import legacy
import sarif

VERSION = "1.0"


def _rule_table() -> str:
    rows = []
    for rule in sorted(legacy.ALL_RULES | {"bad-waiver"}):
        origin = "ported" if rule in legacy.PORTED_RULES else (
            "meta" if rule == "bad-waiver" else "scoped")
        waivable = "no" if rule in legacy.UNWAIVABLE or rule == "bad-waiver" \
            else "yes"
        rows.append((rule, origin, waivable,
                     sarif.RULE_DESCRIPTIONS.get(rule, "")))
    width = max(len(r[0]) for r in rows)
    lines = ["{:<{w}}  {:<6}  {:<8}  {}".format(
        "rule", "origin", "waivable", "description", w=width)]
    for rule, origin, waivable, desc in rows:
        lines.append("{:<{w}}  {:<6}  {:<8}  {}".format(
            rule, origin, waivable, desc, w=width))
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="fplint", add_help=True,
        description="scope-aware static analysis for the FlowPulse tree")
    ap.add_argument("paths", nargs="*")
    ap.add_argument("--sarif", metavar="FILE")
    ap.add_argument("--fix", action="store_true")
    ap.add_argument("--compat-detlint", action="store_true")
    ap.add_argument("--no-cache", action="store_true")
    ap.add_argument("--cache-dir", metavar="DIR", default=".fplint-cache")
    ap.add_argument("--stats", action="store_true")
    ap.add_argument("--rules", action="store_true")
    ap.add_argument("--version", action="version",
                    version="fplint {}".format(VERSION))
    args = ap.parse_args(argv)

    if args.rules:
        print(_rule_table())
        return 0
    if not args.paths:
        print(__doc__, file=sys.stderr)
        return 2

    prog = "detlint" if args.compat_detlint else "fplint"
    paths, err = legacy.collect_paths(args.paths)
    if err is not None:
        print("{}: {}".format(prog, err), file=sys.stderr)
        return 2

    cache_file = None if args.no_cache else \
        Path(args.cache_dir) / "facts.pickle"
    cache = engine.FactCache(cache_file)
    t0 = time.monotonic()

    if args.fix:
        if args.compat_detlint:
            print("fplint: --fix and --compat-detlint are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        changed, edits = fixmod.fix_paths(paths, cache)
        if changed:
            print("fplint: fixed {} waiver issue(s) in {} file(s)".format(
                edits, changed))

    results = engine.run(paths, cache, compat=args.compat_detlint)
    text, count = engine.render_text(results, prog=prog)
    print(text)

    if args.sarif:
        sarif.write_sarif(args.sarif, results, VERSION)

    if args.stats:
        dt = time.monotonic() - t0
        print("fplint: {} file(s), {} cached, {} analyzed, {:.3f}s".format(
            len(paths), cache.hits, cache.misses, dt), file=sys.stderr)

    return 1 if count else 0
