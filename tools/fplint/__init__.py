"""fplint: scope-aware static analysis for the FlowPulse tree.

A dependency-free (stdlib-only, Python >= 3.8) replacement for the
regex-based tools/detlint.py. The substrate is a real C++ tokenizer
(lexer.py), a brace/scope tracker with declaration capture (scopes.py),
a cross-TU identifier/declaration index and include-graph builder
(engine.py), and a legacy-compatible line view (legacy.py) on which the
twelve historical detlint rules run byte-identically (rules_ported.py —
proven by the parity ctest against the frozen engine under tests/).

On top of that substrate live the four rules a line regex cannot
express (rules_scoped.py + engine.py):

  lane-capture        a lambda posted cross-lane must not capture by
                      reference or smuggle pointers to source-lane state
  variant-divergence  FP_AUDIT / FP_TRACE / assert argument expressions
                      must be side-effect-free (they compile to
                      ((void)0) in default builds)
  layering            the module DAG
                      core < sim < net < transport < collective <
                      flowpulse < {ctrl, baseline, obs} < exp < daemon
                      is enforced from the include graph
  stale-waiver        a waiver on a line where its rule no longer fires
                      is itself an error

Entry points: `python3 tools/fplint <paths>` (tools/fplint/__main__.py)
or the thin back-compat shim `python3 tools/detlint.py <paths>`.
"""

__version__ = "1.0"
