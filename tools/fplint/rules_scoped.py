"""The four scope-aware rules only the tokenizer substrate can express.

  lane-capture        lambdas handed to another lane (or deferred) must
                      not capture by reference or smuggle pointers
  variant-divergence  FP_AUDIT / FP_TRACE / assert argument expressions
                      must be side-effect-free across build variants
  layering            the module include DAG is enforced
  stale-waiver        (engine.py — needs the resolved finding set)

Each function returns raw findings as (line, rule, message) tuples; the
engine applies waivers and cross-TU resolution.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from scopes import (CROSS_LANE_CALLEES, DEFERRED_CALLEES, CALLABLE_WRAPPERS,
                    LambdaSite, MacroRecord)

Finding = Tuple[int, str, str]

# ---------------------------------------------------------------------------
# layering
# ---------------------------------------------------------------------------
# The module DAG, as ranks. An include from module A of module B is legal
# iff rank[B] < rank[A] (strictly below) or A == B. Lateral includes
# between same-rank modules (ctrl <-> baseline <-> obs) are forbidden:
# the rank-6 modules are independent consumers of flowpulse, not a layer
# that may entangle itself.
MODULE_RANK: Dict[str, int] = {
    "core": 0,
    "sim": 1,
    "net": 2,
    "transport": 3,
    "collective": 4,
    "flowpulse": 5,
    "ctrl": 6,
    "baseline": 6,
    "obs": 6,
    "exp": 7,
    "daemon": 8,
}

_DAG_TEXT = ("core < sim < net < transport < collective < flowpulse < "
             "{ctrl, baseline, obs} < exp < daemon")

# Live quoted include on a preprocessor line. Matched against the raw
# line but gated on the stripped view starting with '#', so a
# commented-out include does not flag (same discipline as the os-io rule).
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def quoted_includes(raw_lines: List[str],
                    code: List[str]) -> List[Tuple[int, str]]:
    """(1-based line, target) for every live quoted #include."""
    out: List[Tuple[int, str]] = []
    for idx, raw in enumerate(raw_lines):
        if not code[idx].lstrip().startswith("#"):
            continue
        m = INCLUDE_RE.match(raw)
        if m:
            out.append((idx + 1, m.group(1)))
    return out


def layering_findings(module: Optional[str],
                      includes: List[Tuple[int, str]]) -> List[Finding]:
    if module is None or module not in MODULE_RANK:
        return []  # outside src/ (tests, tools) the DAG does not apply
    rank = MODULE_RANK[module]
    findings: List[Finding] = []
    for line, target in includes:
        if "/" not in target:
            continue  # same-directory relative include
        tmod = target.split("/", 1)[0]
        if tmod == module:
            continue
        trank = MODULE_RANK.get(tmod)
        if trank is None:
            findings.append(
                (line, "layering",
                 "include of \"{}\": '{}' is not a module in the layering "
                 "DAG ({})".format(target, tmod, _DAG_TEXT)))
        elif trank >= rank:
            findings.append(
                (line, "layering",
                 "include of \"{}\" from module '{}': '{}' is layered at or "
                 "above '{}' in the module DAG ({}) — depend downward only, "
                 "or move the shared piece into a lower layer".format(
                     target, module, tmod, module, _DAG_TEXT)))
    return findings


# ---------------------------------------------------------------------------
# lane-capture
# ---------------------------------------------------------------------------

def lane_capture_findings(lambda_sites: List[LambdaSite]) -> List[Finding]:
    """Reference/pointer captures in deferred or cross-lane callables.

    Two strictness tiers:
      * post_remote() (cross-lane): no by-reference captures, no `this`,
        and no by-value capture of a pointer — the destination lane would
        dereference source-lane state concurrently with the source lane.
      * schedule()/schedule_in()/schedule_at()/InlineFn/LaneFn/EventFn
        (same-lane, deferred): by-reference captures only — the callable
        outlives the enclosing scope, so stack references dangle, but
        same-lane pointers are fine (no concurrency).
    """
    findings: List[Finding] = []
    for site in lambda_sites:
        strict_ctx = next(
            (c for c in site.contexts if c in CROSS_LANE_CALLEES), None)
        deferred_ctx = next(
            (c for c in site.contexts
             if c in DEFERRED_CALLEES or c in CALLABLE_WRAPPERS), None)
        if strict_ctx is None and deferred_ctx is None:
            continue
        ctx = strict_ctx or deferred_ctx
        for cap in site.captures:
            if cap.mode == "ref-default":
                findings.append(
                    (cap.line, "lane-capture",
                     "lambda handed to {}() uses the by-reference default "
                     "capture '[&]': the callable runs after this scope is "
                     "gone{} — capture what it needs by value".format(
                         ctx, " and on another lane" if strict_ctx else "")))
            elif cap.mode in ("ref", "init-ref"):
                findings.append(
                    (cap.line, "lane-capture",
                     "lambda handed to {}() captures '{}' by reference: the "
                     "callable runs after this scope is gone{} — capture it "
                     "by value".format(
                         ctx, cap.name,
                         " and on another lane" if strict_ctx else "")))
            elif strict_ctx is not None and cap.mode == "this":
                findings.append(
                    (cap.line, "lane-capture",
                     "lambda posted cross-lane via {}() captures 'this': the "
                     "destination lane would touch state owned by the source "
                     "lane — capture the needed values, or waive with the "
                     "ownership argument (e.g. the pointee is owned by the "
                     "destination lane)".format(strict_ctx)))
            elif (strict_ctx is not None
                    and cap.mode in ("val", "init-val") and cap.is_pointer):
                findings.append(
                    (cap.line, "lane-capture",
                     "lambda posted cross-lane via {}() captures pointer "
                     "'{}' by value: the pointee stays with the source lane "
                     "— copy the data, or waive with the ownership argument "
                     "(e.g. the pointee is owned by the destination "
                     "lane)".format(strict_ctx, cap.name)))
    return findings


# ---------------------------------------------------------------------------
# variant-divergence
# ---------------------------------------------------------------------------

def variant_local_findings(records: List[MacroRecord]) -> List[Finding]:
    """Mutation operators inside FP_AUDIT/FP_TRACE/assert arguments."""
    findings: List[Finding] = []
    for rec in records:
        for line, op in rec.ops:
            findings.append(
                (line, "variant-divergence",
                 "argument of {}() mutates state ('{}'): the expression "
                 "compiles to ((void)0) {}, so the builds would diverge — "
                 "hoist the side effect out of the macro".format(
                     rec.macro, op, _variant_knob(rec.macro))))
    return findings


def variant_call_sites(records: List[MacroRecord]) -> List[Tuple[int, str, str]]:
    """(line, macro, method) calls needing cross-TU const resolution."""
    return [(line, rec.macro, name)
            for rec in records for line, name in rec.calls]


def resolve_variant_calls(call_sites: List[Tuple[int, str, str]],
                          method_index: Dict[str, bool]) -> List[Finding]:
    """Flag method calls in macro args that resolve to a non-const method.

    method_index maps method name -> True if ANY declaration anywhere in
    the tree is const-qualified. A name that does not resolve (std::,
    third-party) is assumed const: the rule is for our own accessors that
    quietly mutate. Bias: uncertainty produces no finding.
    """
    findings: List[Finding] = []
    for line, macro, name in call_sites:
        if name in method_index and not method_index[name]:
            findings.append(
                (line, "variant-divergence",
                 "argument of {}() calls '{}()', which only resolves to "
                 "non-const declarations in this tree: the call vanishes "
                 "{} — use a const accessor or hoist the call".format(
                     macro, name, _variant_knob(macro))))
    return findings


def _variant_knob(macro: str) -> str:
    """The build condition under which the macro's argument disappears."""
    return {"assert": "when NDEBUG is defined",
            "FP_AUDIT": "when FLOWPULSE_AUDIT is off",
            "FP_TRACE": "when FLOWPULSE_TRACE is off"}.get(
                macro, "in some build variants")
