"""Directory entry point: `python3 tools/fplint <paths...>`.

Running a directory puts it on sys.path[0], so the package's modules
import each other as top-level names; the explicit insert below keeps
that true when this file is executed by path from elsewhere.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cli  # noqa: E402

if __name__ == "__main__":
    sys.exit(cli.main(sys.argv[1:]))
