"""Brace/scope tracker and declaration capture over the token stream.

One forward pass per file (`analyze`) maintains a live scope stack —
namespace / class / function / lambda / block / braced-init — and while
walking:

  * records method declarations with their const-qualification (fed into
    the engine's cross-TU index for the variant-divergence rule);
  * records variable/parameter declarations with pointer-ness (so a
    by-value capture of a pointer is recognizable);
  * detects lambda expressions, parses their capture lists, resolves
    each captured identifier against the scope stack, and records the
    enclosing call contexts (post_remote / schedule / InlineFn / ...)
    for the lane-capture rule.

A second, independent pass (`macro_arg_records`) extracts the argument
regions of FP_AUDIT / FP_TRACE / assert invocations for the
variant-divergence rule: mutation operators, and method calls whose
const-ness the engine resolves cross-TU.

Everything here is a linter-grade approximation of C++, not a parser:
it is deliberately biased so that uncertainty produces *no* finding
(e.g. an unresolvable capture is assumed pointer-free), and every rule
built on it is waivable. Preprocessor-directive tokens are skipped
throughout, so macro *definitions* never trip the rules their
expansions are checked against.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from lexer import COMMENT, ID, PUNCT, Token

# Call/wrapper names that hand a callable to another lane or defer it.
CROSS_LANE_CALLEES = frozenset({"post_remote"})
DEFERRED_CALLEES = frozenset({"schedule", "schedule_in", "schedule_at"})
CALLABLE_WRAPPERS = frozenset({"LaneFn", "InlineFn", "EventFn"})

# Macros whose argument expressions vanish in some build variants.
VARIANT_MACROS = frozenset({"FP_AUDIT", "FP_TRACE", "assert"})

_CONTROL_KEYWORDS = frozenset({"if", "for", "while", "switch", "catch"})
_STMT_KEYWORDS = frozenset({
    "return", "throw", "delete", "goto", "case", "co_return", "co_yield",
})
_MUTATING_OPS = frozenset({
    "++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<=", ">>=",
})


class CaptureInfo(NamedTuple):
    mode: str       # 'ref-default' | 'val-default' | 'ref' | 'val' |
                    # 'this' | 'star-this' | 'init-val' | 'init-ref'
    name: str       # captured identifier ('' for defaults / *this)
    is_pointer: bool  # by-value capture resolved to a pointer declaration
    line: int


class LambdaSite(NamedTuple):
    line: int
    captures: Tuple[CaptureInfo, ...]
    contexts: Tuple[str, ...]  # enclosing callee / wrapper names, inner first


class MacroRecord(NamedTuple):
    macro: str
    line: int
    # Mutation operators found inside the argument region: (line, op text).
    ops: Tuple[Tuple[int, str], ...]
    # Method calls (obj.m(...) / p->m(...)): (line, method name).
    calls: Tuple[Tuple[int, str], ...]


class FileAnalysis(NamedTuple):
    # method name -> list of observed const-qualifications (True/False).
    method_decls: Dict[str, List[bool]]
    lambda_sites: Tuple[LambdaSite, ...]


class _Scope:
    __slots__ = ("kind", "name", "decls")

    def __init__(self, kind: str, name: str = "") -> None:
        self.kind = kind
        self.name = name
        self.decls: Dict[str, bool] = {}  # name -> is_pointer


def _semantic(tokens: List[Token]) -> List[Token]:
    """Tokens that carry semantics: no comments, no preprocessor lines."""
    return [t for t in tokens if t.kind != COMMENT and not t.pp]


def _match_forward(toks: List[Token], i: int, open_: str, close: str) -> int:
    """Index of the token closing the bracket at toks[i], or len(toks)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == open_:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n


def analyze(tokens: List[Token]) -> FileAnalysis:
    toks = _semantic(tokens)
    n = len(toks)
    scopes: List[_Scope] = [_Scope("root")]
    pending: Optional[_Scope] = None      # scope to attach at the next '{'
    pending_params: Dict[str, bool] = {}  # declarator params for that scope
    # Open call/wrapper contexts: (name, paren_depth_at_entry) — parens —
    # plus wrapper init-braces, tracked on the scope stack itself.
    call_stack: List[Tuple[str, int]] = []
    paren_depth = 0
    stmt_saw_assign = False   # suppress decl capture after '=' in a statement
    stmt_suppressed = False   # statement started with return/throw/...
    method_decls: Dict[str, List[bool]] = {}
    lambda_sites: List[LambdaSite] = []

    def current_contexts() -> Tuple[str, ...]:
        ctx = [name for name, _ in reversed(call_stack)]
        for s in reversed(scopes):
            if s.kind == "wrapper-init":
                ctx.append(s.name)
        return tuple(ctx)

    def resolve_pointer(name: str) -> bool:
        for s in reversed(scopes):
            if name in s.decls:
                return s.decls[name]
        return False

    def record_decl(name: str, is_pointer: bool) -> None:
        scopes[-1].decls.setdefault(name, is_pointer)

    def scan_params(start: int, end: int) -> Dict[str, bool]:
        """Parameter names and pointer-ness between toks[start+1:end]."""
        params: Dict[str, bool] = {}
        depth = 0
        cur: List[Token] = []
        for k in range(start + 1, end):
            t = toks[k]
            if t.text in "([<{":
                depth += 1
            elif t.text in ")]>}":
                depth -= 1
            if t.text == "," and depth == 0:
                _param_into(params, cur)
                cur = []
            else:
                cur.append(t)
        _param_into(params, cur)
        return params

    i = 0
    while i < n:
        t = toks[i]
        text = t.text

        if text in ";":
            stmt_saw_assign = False
            stmt_suppressed = False
            i += 1
            continue

        if t.kind == ID and text in _STMT_KEYWORDS:
            stmt_suppressed = True
            i += 1
            continue

        # ---- scope-opening keywords -------------------------------------
        if t.kind == ID and text == "namespace":
            j = i + 1
            name_parts: List[str] = []
            while j < n and toks[j].text not in "{;=":
                if toks[j].kind == ID:
                    name_parts.append(toks[j].text)
                j += 1
            if j < n and toks[j].text == "{":
                pending = _Scope("ns", "::".join(name_parts))
                pending_params = {}
            i = j
            continue

        if t.kind == ID and text in ("class", "struct", "union", "enum"):
            j = i + 1
            if j < n and toks[j].text == "class":  # enum class
                j += 1
            name = ""
            while j < n and toks[j].text not in "{;(":
                if toks[j].kind == ID and not name:
                    # skip attributes/alignas by taking the first plain name
                    name = toks[j].text
                j += 1
            if j < n and toks[j].text == "{":
                kind = "enum" if text == "enum" else "class"
                pending = _Scope(kind, name)
                pending_params = {}
                i = j
                continue
            i += 1
            continue

        # ---- braces ------------------------------------------------------
        if text == "{":
            if pending is not None:
                scope = pending
                scope.decls.update(pending_params)
                pending, pending_params = None, {}
            else:
                scope = _classify_brace(toks, i)
            scopes.append(scope)
            i += 1
            continue
        if text == "}":
            if len(scopes) > 1:
                scopes.pop()
            stmt_saw_assign = False
            stmt_suppressed = False
            i += 1
            continue

        # ---- parens / call contexts -------------------------------------
        if text == "(":
            paren_depth += 1
            i += 1
            continue
        if text == ")":
            paren_depth -= 1
            while call_stack and call_stack[-1][1] >= paren_depth:
                call_stack.pop()
            i += 1
            continue

        if text == "=":
            stmt_saw_assign = True
            i += 1
            continue

        # ---- identifiers -------------------------------------------------
        if t.kind == ID:
            nxt = toks[i + 1].text if i + 1 < n else ""
            if nxt == "(" and (text in CROSS_LANE_CALLEES
                               or text in DEFERRED_CALLEES
                               or text in CALLABLE_WRAPPERS
                               or text in VARIANT_MACROS):
                call_stack.append((text, paren_depth))
                i += 1
                continue
            if nxt == "{" and text in CALLABLE_WRAPPERS:
                pending = _Scope("wrapper-init", text)
                pending_params = {}
                i += 1
                continue

            # Method declaration: at class/namespace scope, `name (` whose
            # declarator plausibly starts a function (see module docstring).
            if (nxt == "(" and scopes[-1].kind in ("class", "ns", "root")
                    and text != "operator"):
                prev = toks[i - 1].text if i > 0 else ""
                if prev not in ("=", ",", "(", "return", "<<", ">>", "&&",
                                "||", "+", "-", "*", "/", "!", "new"):
                    close = _match_forward(toks, i + 1, "(", ")")
                    is_const = False
                    is_decl = False
                    k = close + 1
                    while k < n:
                        tk = toks[k].text
                        if tk == "const":
                            is_const = True
                        elif tk in ("{", ";"):
                            is_decl = True
                            break
                        elif tk in ("noexcept", "override", "final", "->",
                                    "[", "]", "&", "&&", "=", "default",
                                    "delete", "0", ":") or toks[k].kind == ID:
                            pass  # trailing specifiers / ctor init list
                        else:
                            break
                        k += 1
                    if is_decl:
                        method_decls.setdefault(text, []).append(is_const)
                    # Parameters become decls of the body scope, if one opens.
                    if is_decl and k < n and toks[k].text == "{":
                        pending = _Scope("fn", text)
                        pending_params = scan_params(i + 1, close)
                        i = k  # jump to '{' (handled above next iteration)
                        continue
                    i = close + 1 if close < n else n
                    continue

            # Variable declaration (pointer-ness capture): `prev * name sep`
            if (not stmt_saw_assign and not stmt_suppressed and i > 0
                    and nxt in (";", "=", ",", ")", "{", "[")):
                prev_t = toks[i - 1]
                if prev_t.text == "*":
                    record_decl(text, True)
                elif prev_t.kind == ID or prev_t.text in (">", "&", "&&"):
                    record_decl(text, False)
            i += 1
            continue

        # ---- lambdas -----------------------------------------------------
        if text == "[" and _is_lambda_intro(toks, i):
            captures, close = _parse_captures(toks, i)
            resolved = tuple(
                c._replace(is_pointer=(c.mode in ("val", "init-val")
                                       and (c.is_pointer or resolve_pointer(c.name))))
                for c in captures)
            lambda_sites.append(
                LambdaSite(t.line, resolved, current_contexts()))
            # Parameters of the lambda land in its body scope.
            j = close + 1
            if j < n and toks[j].text == "(":
                pclose = _match_forward(toks, j, "(", ")")
                pending = _Scope("lambda", "")
                pending_params = scan_params(j, pclose)
            else:
                pending = _Scope("lambda", "")
                pending_params = {}
            i = close + 1
            continue

        i += 1

    return FileAnalysis(method_decls, tuple(lambda_sites))


def _param_into(params: Dict[str, bool], toks: List[Token]) -> None:
    """Record one parameter's (name, pointer-ness) from its token slice."""
    if not toks:
        return
    # Drop a default argument, if any.
    for k, t in enumerate(toks):
        if t.text == "=":
            toks = toks[:k]
            break
    name = None
    for t in reversed(toks):
        if t.kind == ID and t.text not in ("const", "volatile"):
            name = t.text
            break
    if name is None or len(toks) < 2:
        return  # unnamed or type-only parameter
    params.setdefault(name, any(t.text == "*" for t in toks))


def _classify_brace(toks: List[Token], i: int) -> _Scope:
    """What does an un-annotated '{' at index i open?"""
    j = i - 1
    # Skip trailing specifiers between ')' and '{'.
    while j >= 0 and (toks[j].text in ("const", "noexcept", "override",
                                       "final", "mutable", "&", "&&")
                      or (toks[j].kind == ID and j >= 1
                          and toks[j - 1].text == "->")):
        if toks[j - 1].text == "->" and toks[j].kind == ID:
            j -= 2
        else:
            j -= 1
    if j < 0:
        return _Scope("block")
    prev = toks[j]
    if prev.text == ")":
        # Function body vs control statement: find the '(' opener's keyword.
        k = j
        depth = 0
        while k >= 0:
            if toks[k].text == ")":
                depth += 1
            elif toks[k].text == "(":
                depth -= 1
                if depth == 0:
                    break
            k -= 1
        head = toks[k - 1].text if k > 0 else ""
        if head in _CONTROL_KEYWORDS:
            return _Scope("block")
        return _Scope("fn", head)
    if prev.text in (";", "{", "}", "else", "do", "try"):
        return _Scope("block")
    return _Scope("init")  # braced initializer / designated init / etc.


def _is_lambda_intro(toks: List[Token], i: int) -> bool:
    """Is the '[' at index i a lambda-introducer (vs subscript/attribute)?"""
    if i + 1 < len(toks) and toks[i + 1].text == "[":
        return False  # [[attribute]]
    if i > 0:
        prev = toks[i - 1]
        if prev.kind in (ID, "num", "str") or prev.text in (")", "]", "}"):
            return False  # subscript (ident[...]) or attribute continuation
        if prev.text == "[":
            return False
    close = _match_forward(toks, i, "[", "]")
    if close >= len(toks):
        return False
    nxt = toks[close + 1].text if close + 1 < len(toks) else ""
    return nxt in ("(", "{", "mutable", "->", "<", "noexcept")


def _parse_captures(toks: List[Token], i: int) -> Tuple[List[CaptureInfo], int]:
    """Parse the capture list of the lambda introduced at toks[i]."""
    close = _match_forward(toks, i, "[", "]")
    items: List[List[Token]] = [[]]
    depth = 0
    for k in range(i + 1, close):
        t = toks[k]
        if t.text in "([{":
            depth += 1
        elif t.text in ")]}":
            depth -= 1
        if t.text == "," and depth == 0:
            items.append([])
        else:
            items[-1].append(t)

    captures: List[CaptureInfo] = []
    for item in items:
        if not item:
            continue
        line = item[0].line
        texts = [t.text for t in item]
        if texts == ["&"]:
            captures.append(CaptureInfo("ref-default", "", False, line))
        elif texts == ["="]:
            captures.append(CaptureInfo("val-default", "", False, line))
        elif texts == ["this"]:
            captures.append(CaptureInfo("this", "this", True, line))
        elif texts[:2] == ["*", "this"]:
            captures.append(CaptureInfo("star-this", "*this", False, line))
        elif texts[0] == "&":
            name = item[1].text if len(item) > 1 else ""
            if "=" in texts:  # init-capture by reference: &x = expr
                captures.append(CaptureInfo("init-ref", name, False, line))
            else:
                captures.append(CaptureInfo("ref", name, False, line))
        elif "=" in texts:
            # init-capture by value: x = expr. Pointer-ish if the
            # initializer takes an address or copies a pointer-looking expr
            # (resolution of the first identifier happens in analyze()).
            eq = texts.index("=")
            rhs = item[eq + 1:]
            addr_of = bool(rhs) and rhs[0].text == "&"
            src = next((t.text for t in rhs if t.kind == ID), "")
            captures.append(CaptureInfo("init-val", src, addr_of, line))
        else:
            captures.append(CaptureInfo("val", item[0].text, False, line))
    return captures, close


def macro_arg_records(tokens: List[Token]) -> List[MacroRecord]:
    """FP_AUDIT / FP_TRACE / assert invocations and what their args do."""
    toks = _semantic(tokens)
    n = len(toks)
    records: List[MacroRecord] = []
    i = 0
    while i < n:
        t = toks[i]
        if (t.kind == ID and t.text in VARIANT_MACROS
                and i + 1 < n and toks[i + 1].text == "("):
            close = _match_forward(toks, i + 1, "(", ")")
            ops: List[Tuple[int, str]] = []
            calls: List[Tuple[int, str]] = []
            for k in range(i + 2, close):
                tk = toks[k]
                if tk.text in _MUTATING_OPS:
                    # '=' inside a lambda introducer ([=] / [x = ...]) or a
                    # `<=>` neighborhood is not an assignment here.
                    if tk.text == "=" and (
                            (k > 0 and toks[k - 1].text == "[")
                            or (k + 1 < n and toks[k + 1].text == "]")):
                        continue
                    ops.append((tk.line, tk.text))
                elif (tk.kind == ID and k + 1 < n
                        and toks[k + 1].text == "("
                        and k > 0 and toks[k - 1].text in (".", "->")):
                    calls.append((tk.line, tk.text))
            records.append(MacroRecord(t.text, t.line, tuple(ops), tuple(calls)))
            i = close + 1
            continue
        i += 1
    return records
