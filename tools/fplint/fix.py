"""`fplint --fix`: the mechanical fixes, and only the mechanical ones.

Two transformations, both provably behavior-preserving for the lint:

  * stale-waiver removal — a waiver whose rule does not fire on the line
    it targets is deleted (the whole line when the directive is the only
    thing on it, just the directive text when it trails code);
  * directive normalization — a surviving, valid waiver is rewritten to
    the canonical spacing `// <tool>: ok(<rule>): <justification>`. The
    tool token (`detlint:` vs `fplint:`) is preserved: ported-rule
    waivers keep the historical spelling so the frozen legacy engine in
    the parity test reads them too.

Anything that needs judgement (an unknown rule id, a missing
justification, an actual finding) is left for a human. Running --fix
twice is a no-op the second time — the idempotence ctest proves it.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple

import engine
import legacy


def fix_text(text: str, stale: List[legacy.Waiver]) -> Tuple[str, int]:
    """Apply both fixes to one file's text. Returns (new_text, n_edits)."""
    # splitlines(True) keeps each line's own terminator, so files without
    # a trailing newline round-trip byte-exactly.
    lines = text.splitlines(True)
    edits = 0

    # Stale removal, bottom-up so earlier directive line numbers stay valid.
    for w in sorted(stale, key=lambda w: w.directive_line, reverse=True):
        idx = w.directive_line - 1
        if idx >= len(lines):
            continue
        line = lines[idx]
        m = _directive_at(line, w)
        if m is None:
            continue
        head = line[:m.start()]
        if head.strip() in ("", "//"):
            del lines[idx]  # the directive was the whole line
        else:
            eol = _terminator(line)
            lines[idx] = head.rstrip() + eol
        edits += 1

    # Normalization: purely syntactic, so it is idempotent by construction.
    for idx, line in enumerate(lines):
        m = legacy.DIRECTIVE_RE.search(line)
        if m is None:
            continue
        spelling, rule = m.group(1), m.group(2)
        justification = (m.group(3) or "").strip()
        if rule not in legacy.ALL_RULES or rule in legacy.UNWAIVABLE \
                or not justification:
            continue  # bad-waiver territory: needs a human, not a fixer
        canonical = "// {}: ok({}): {}".format(spelling, rule, justification)
        if line[m.start():m.end()] != canonical:
            lines[idx] = line[:m.start()] + canonical + line[m.end():]
            edits += 1

    return "".join(lines), edits


def fix_paths(paths: List[Path],
              cache: "engine.FactCache") -> Tuple[int, int]:
    """Fix every file in place. Returns (files changed, total edits)."""
    files = [(str(p), cache.facts_for(p)) for p in paths]
    global_unordered, method_index = engine.global_indexes(files)

    changed = 0
    total_edits = 0
    for path, (_, facts) in zip(paths, files):
        raw = engine.raw_findings_for(
            facts, global_unordered, method_index, compat=False)
        stale = engine.stale_waivers_for(facts, raw)
        text = path.read_text(encoding="utf-8", errors="replace")
        new_text, edits = fix_text(text, stale)
        if edits and new_text != text:
            path.write_text(new_text, encoding="utf-8")
            changed += 1
            total_edits += edits
    return changed, total_edits


def _directive_at(line: str, w: legacy.Waiver) -> "re.Match | None":
    """The directive match on `line` corresponding to waiver `w`."""
    for m in legacy.DIRECTIVE_RE.finditer(line):
        if m.start() == w.match_start and m.group(2) == w.rule:
            return m
    return None


def _terminator(line: str) -> str:
    if line.endswith("\r\n"):
        return "\r\n"
    if line.endswith("\n"):
        return "\n"
    return ""
