"""fplint engine: per-file fact extraction, cache, cross-TU resolution.

The pipeline is two-phase, exactly like the legacy engine's but with a
cacheable seam between the phases:

  1. `analyze_file` turns one file into `FileFacts` — a pure function of
     the file's bytes (raw findings from every file-local rule, plus the
     cross-TU raw material: unordered-container idents/use-sites, method
     const-ness declarations, macro-argument call sites, waivers). Facts
     are pickled per tree into a single cache file keyed on
     (mtime_ns, size, CACHE_VERSION), which is what makes warm
     incremental runs sub-second: an unchanged file costs one stat.

  2. `resolve` merges the per-file facts into the tree-wide indexes
     (unordered idents, method const-ness), materializes the global
     rules, applies waivers, and computes stale-waiver LAST — from the
     raw pre-waiver finding set, so a waiver is stale exactly when the
     rule it names does not fire on the line it targets.

`compat` mode reproduces the legacy engine bit for bit: legacy directive
regex (detlint: spelling only), the twelve legacy rules, no scoped
rules, no stale-waiver, `detlint:`-prefixed summary. The parity ctest
diffs this mode against the frozen legacy copy on the live tree.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

import legacy
import lexer
import rules_ported
import rules_scoped
import scopes

# Bump whenever tokenization, fact extraction, or any rule changes, so
# stale caches self-invalidate.
CACHE_VERSION = 1

Finding = Tuple[int, str, str]  # (1-based line, rule id, message)


class FileFacts(NamedTuple):
    module: Optional[str]
    raw_local: List[Finding]                      # ported file-local rules
    unordered_idents: List[str]                   # declared in this file
    unordered_sites: List[Tuple[int, str, str]]   # (line, ident, via)
    method_decls: Dict[str, List[bool]]           # name -> const flags seen
    macro_ops: List[Finding]                      # variant-divergence, local
    macro_calls: List[Tuple[int, str, str]]       # (line, macro, method)
    lane_findings: List[Finding]
    layer_findings: List[Finding]
    waivers: List[legacy.Waiver]                  # both spellings
    waiver_errors: List[Finding]
    compat_waivers: List[legacy.Waiver]           # detlint: spelling only
    compat_waiver_errors: List[Finding]


def analyze_file(path: Path) -> FileFacts:
    """Extract every cacheable fact from one file (no cross-TU state)."""
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.splitlines()
    code = legacy.code_lines(raw_lines)
    module = legacy.module_of(path)

    raw_local = rules_ported.lint_local(path, raw_lines, code, module)
    u_idents = rules_ported.unordered_decl_idents(code)
    u_sites = rules_ported.unordered_use_sites(code)

    toks = lexer.tokenize(text)
    analysis = scopes.analyze(toks)
    records = scopes.macro_arg_records(toks)
    includes = rules_scoped.quoted_includes(raw_lines, code)

    full = legacy.scan_waivers(raw_lines, code)
    compat = legacy.scan_waivers(
        raw_lines, code,
        known_rules=legacy.PORTED_RULES,
        unwaivable=frozenset(),
        directive_re=legacy.LEGACY_DIRECTIVE_RE)

    return FileFacts(
        module=module,
        raw_local=raw_local,
        unordered_idents=u_idents,
        unordered_sites=u_sites,
        method_decls=analysis.method_decls,
        macro_ops=rules_scoped.variant_local_findings(records),
        macro_calls=rules_scoped.variant_call_sites(records),
        lane_findings=rules_scoped.lane_capture_findings(
            list(analysis.lambda_sites)),
        layer_findings=rules_scoped.layering_findings(module, includes),
        waivers=full.waivers,
        waiver_errors=full.errors,
        compat_waivers=compat.waivers,
        compat_waiver_errors=compat.errors,
    )


# ---------------------------------------------------------------------------
# fact cache
# ---------------------------------------------------------------------------

class FactCache:
    """One pickle file mapping abs path -> (mtime_ns, size, FileFacts)."""

    def __init__(self, cache_file: Optional[Path]):
        self.cache_file = cache_file
        self.hits = 0
        self.misses = 0
        self._data: Dict[str, Tuple[int, int, FileFacts]] = {}
        self._dirty = False
        if cache_file is not None and cache_file.exists():
            try:
                with cache_file.open("rb") as fh:
                    payload = pickle.load(fh)
                if payload.get("version") == CACHE_VERSION:
                    self._data = payload["files"]
            except Exception:
                self._data = {}  # unreadable/corrupt cache: rebuild

    def facts_for(self, path: Path) -> FileFacts:
        key = str(path.resolve())
        try:
            st = path.stat()
            stamp = (st.st_mtime_ns, st.st_size)
        except OSError:
            stamp = None
        if stamp is not None and key in self._data:
            mt, sz, facts = self._data[key]
            if (mt, sz) == stamp:
                self.hits += 1
                return facts
        facts = analyze_file(path)
        self.misses += 1
        if stamp is not None:
            self._data[key] = (stamp[0], stamp[1], facts)
            self._dirty = True
        return facts

    def save(self) -> None:
        if self.cache_file is None or not self._dirty:
            return
        try:
            self.cache_file.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.cache_file.with_suffix(".tmp.{}".format(os.getpid()))
            with tmp.open("wb") as fh:
                pickle.dump({"version": CACHE_VERSION, "files": self._data},
                            fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(str(tmp), str(self.cache_file))
        except OSError:
            pass  # caching is best-effort; never fail the lint over it


# ---------------------------------------------------------------------------
# cross-TU resolution
# ---------------------------------------------------------------------------

def global_indexes(files: List[Tuple[str, FileFacts]]
                   ) -> Tuple[Set[str], Dict[str, bool]]:
    """The two cross-TU indexes: unordered idents, method const-ness."""
    global_unordered: Set[str] = set()
    method_index: Dict[str, bool] = {}  # name -> any const decl seen
    for _, facts in files:
        global_unordered.update(facts.unordered_idents)
        for name, flags in facts.method_decls.items():
            method_index[name] = method_index.get(name, False) or any(flags)
    return global_unordered, method_index


def raw_findings_for(facts: FileFacts, global_unordered: Set[str],
                     method_index: Dict[str, bool],
                     compat: bool) -> List[Finding]:
    """One file's pre-waiver finding set, global rules resolved."""
    raw: List[Finding] = list(facts.raw_local)
    for line, ident, via in facts.unordered_sites:
        if ident in global_unordered:
            raw.append((line, "unordered-iteration",
                        rules_ported.unordered_iteration_message(ident, via)))
    if not compat:
        raw.extend(facts.lane_findings)
        raw.extend(facts.layer_findings)
        raw.extend(facts.macro_ops)
        raw.extend(rules_scoped.resolve_variant_calls(
            facts.macro_calls, method_index))
    return raw


def stale_waivers_for(facts: FileFacts,
                      raw: List[Finding]) -> List[legacy.Waiver]:
    """Waivers whose rule does not fire on the line they target."""
    fired = {(line, rule) for line, rule, _ in raw}
    return [w for w in facts.waivers
            if w.target_line < 0 or (w.target_line, w.rule) not in fired]


def resolve(files: List[Tuple[str, FileFacts]],
            compat: bool = False) -> List[Tuple[str, List[Finding]]]:
    """Merge per-file facts into final, waiver-filtered findings per file."""
    global_unordered, method_index = global_indexes(files)

    out: List[Tuple[str, List[Finding]]] = []
    for disp, facts in files:
        raw = raw_findings_for(facts, global_unordered, method_index, compat)
        waivers = facts.compat_waivers if compat else facts.waivers
        werrors = facts.compat_waiver_errors if compat else facts.waiver_errors
        wmap = legacy.waiver_map(waivers)
        findings = list(werrors)
        findings.extend(f for f in raw if f[1] not in wmap.get(f[0], {}))

        if not compat:
            for w in stale_waivers_for(facts, raw):
                if w.target_line < 0:
                    findings.append(
                        (w.directive_line, "stale-waiver",
                         "waiver for '{}' never attaches to a code line "
                         "(nothing but blank lines or EOF follows it) — "
                         "remove it".format(w.rule)))
                else:
                    findings.append(
                        (w.directive_line, "stale-waiver",
                         "waiver for '{}' on a line where the rule does not "
                         "fire — the code moved on; remove the waiver "
                         "(`fplint --fix` does this)".format(w.rule)))
        out.append((disp, sorted(findings)))
    return out


def run(paths: List[Path], cache: FactCache,
        compat: bool = False) -> List[Tuple[str, List[Finding]]]:
    files = [(str(p), cache.facts_for(p)) for p in paths]
    results = resolve(files, compat=compat)
    cache.save()
    return results


def render_text(results: List[Tuple[str, List[Finding]]],
                prog: str = "fplint") -> Tuple[str, int]:
    """The legacy output format. Returns (text, finding count)."""
    lines: List[str] = []
    count = 0
    for disp, findings in results:
        for lineno, rule, message in findings:
            lines.append("{}:{}: error[{}]: {}".format(
                disp, lineno, rule, message))
            count += 1
    if count:
        lines.append("{}: {} error(s) in {} file(s)".format(
            prog, count, len(results)))
    else:
        lines.append("{}: clean ({} files)".format(prog, len(results)))
    return "\n".join(lines), count
