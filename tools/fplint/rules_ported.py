"""The twelve detlint rules, ported byte-identically.

Each rule keeps the exact regex, exemption logic, and message text of the
legacy engine (tools/detlint.py before it became a shim; frozen verbatim
at tools/fplint/tests/legacy_detlint.py), operating on the legacy line
view (legacy.code_lines). The parity ctest diffs this port against the
frozen engine over the live src/ tree on every run, so any drift — a
"harmless" message reword included — is a test failure.

Rule documentation lives in DESIGN.md ("Correctness tooling") and in the
rule table printed by `python3 tools/fplint --rules`.

Cross-file state: `unordered-iteration` needs the set of identifiers
declared anywhere in the scanned tree as unordered containers, and is
therefore split into a per-file collection half (`unordered_decl_idents`,
`unordered_use_sites`) and a global resolution half the engine performs.
Everything else is file-local (`lint_local`).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple

Finding = Tuple[int, str, str]  # (1-based line, rule id, message)

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:multi)?(?:map|set)\b")
# Identifier of a (possibly member) variable declared with an unordered
# container type: the last identifier on the declaration before ; { or =.
UNORDERED_IDENT_RE = re.compile(
    r"\bstd::unordered_(?:multi)?(?:map|set)\s*<.*>\s+(\w+)\s*(?:;|\{|=)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*:\s*(?:\w+(?:\.|->))*(\w+)\s*\)")
# end() alone is a find()-sentinel comparison; traversal always needs begin().
BEGIN_RE = re.compile(r"\b(\w+)\s*(?:\.|->)\s*c?r?begin\s*\(")
POINTER_KEY_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+"
    r"(?:\s*<[^<>]*>)?\s*\*")
WALL_CLOCK_RES = [
    (re.compile(r"\bstd::chrono::system_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bstd::chrono::high_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bstd::chrono::steady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.>])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time()"),
    (re.compile(r"(?<![\w.>])clock\s*\(\s*\)"), "clock()"),
]
BANNED_RNG_RES = [
    (re.compile(r"\bstd::s?rand\b"), "std::rand/srand"),
    (re.compile(r"(?<![\w.>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::mt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bstd::minstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\bstd::default_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\bstd::ranlux\w+\b"), "std::ranlux*"),
    (re.compile(r"\bstd::knuth_b\b"), "std::knuth_b"),
    (re.compile(r"\bstd::\w+_distribution\b"), "std::*_distribution"),
]
THREADING_RE = re.compile(
    r"\bstd::(?:thread|jthread|atomic|mutex|async)\b"
    r"|\bcore::(?:Mutex|LockGuard)\b")
# static / thread_local declaration of a MUTABLE object (const/constexpr/
# constinit are fine — immutable statics cannot couple lanes). static_assert
# and static_cast are single words, so \b(static)\b does not match them.
MUTABLE_STATIC_RE = re.compile(
    r"(?:^|[{;]\s*|\s)(?:inline\s+)?"
    r"(?:static\s+thread_local|thread_local\s+static|static|thread_local)\s+"
    r"(?!const\b|constexpr\b|constinit\b|inline\s+const)")
# Keywords that start a column-0 line which is definitely NOT a mutable
# namespace-scope object definition.
NS_GLOBAL_SKIP = {
    "const", "constexpr", "constinit", "static", "inline", "extern", "using",
    "typedef", "class", "struct", "enum", "union", "namespace", "template",
    "friend", "return", "public", "private", "protected", "if", "else", "for",
    "while", "switch", "case", "default", "do", "try", "catch", "goto",
}
# Modules whose public headers have been converted to core:: strong types —
# a raw scalar with an id-like/unit-like name there is a regression.
CONVERTED_MODULES = {
    "core", "net", "flowpulse", "ctrl", "baseline", "exp", "transport",
    "collective", "daemon",
}
# Modules that legitimately talk to the outside world: OS I/O (sockets,
# epoll, fds) and wall clocks are their job, not a determinism leak. The
# simulation core must never join this set.
REALTIME_MODULES = {"daemon"}
OS_IO_INCLUDE_RE = re.compile(
    r'#\s*include\s*[<"](?:sys/(?:socket|epoll|eventfd|select|un|uio)\.h'
    r"|netinet/[\w.]+|arpa/inet\.h|poll\.h|fcntl\.h|unistd\.h"
    r'|netdb\.h)[>"]')
RAW_INT_TYPE = (r"(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t"
                r"|unsigned(?:\s+(?:int|long(?:\s+long)?))?"
                r"|(?<!unsigned )int|long(?:\s+long)?)")
RAW_SCALAR_ID_RE = re.compile(
    rf"\b{RAW_INT_TYPE}\s+"
    r"(\w*(?:port|host|leaf|spine|link|bytes)\w*)\s*(?:[;,)={{]|$)")
# Count-like names a raw integer is right for: num_uplinks, retx_count,
# hosts_per_leaf, and plurals (uplinks). *bytes* is never count-like —
# the plural 's' is part of the unit name core::Bytes replaces.
COUNT_LIKE_RE = re.compile(r"^(?:num_|n_)|_count_?$|_per_|^\w*(?<!byte)s_?$")
STRONG_ID_NAMES = r"(?:HostId|LeafId|SpineId|PortId|PortIndex|UplinkIndex|IterIndex|LinkId)"
STRONGID_CAST_RE = re.compile(
    rf"\bstatic_cast\s*<\s*(?:\w+::)*{STRONG_ID_NAMES}\s*>")
FLOAT_DECL_RE = re.compile(r"\b(?:float|double)\s+(\w+)\s*(?:;|=|\{)")
ACCUM_RE = re.compile(r"(?<![\w.>])(\w+)\s*[+\-]\*?=")
# A mutable member that is not a mutex: locking a const object is the one
# sanctioned use of `mutable` (paired with FP_GUARDED_BY, the analysis
# still proves every access locked).
MUTABLE_MEMBER_RE = re.compile(r"^\s*mutable\s+(?!core::Mutex\b|std::mutex\b)")
# The raw-scalar serialization-time math: only its definition may spell it;
# everything else goes through the strong-typed
# core::serialization_time(Bytes, GbitsPerSec).
RAW_SERIALIZATION_RE = re.compile(
    r"\b(?:sim::)?detail::serialization_time\s*\("
    r"|\bsim::serialization_time\s*\(")


def ns_mutable_global(code: str) -> Optional[str]:
    """Identifier of a column-0 namespace-scope mutable object definition.

    Relies on the repo's clang-format style: namespace contents are NOT
    indented, so any column-0 declaration is namespace scope. Multi-line
    declarations and initializer parens are not recognized — the post-build
    nm symbol audit (tools/check_mutable_symbols.cmake) backstops whatever
    this line-level heuristic cannot see.
    """
    if not code or code[0] in " \t}#":
        return None
    line = code.strip()
    if not line.endswith(";"):
        return None
    if line.startswith("inline "):
        line = line[len("inline "):]
    first = re.match(r"[A-Za-z_]\w*", line)
    if not first or first.group(0) in NS_GLOBAL_SKIP:
        return None
    # A '(' before any '=' marks a function declaration/definition, not an
    # object (initializer parens on globals do not occur in this codebase).
    eq = line.find("=")
    paren = line.find("(")
    if paren != -1 and (eq == -1 or paren < eq):
        return None
    head = line[:eq] if eq != -1 else line[:-1]
    head = head.split("{")[0]
    m = re.search(r"(\w+)\s*(?:\[[^\]]*\])?\s*$", head)
    if m is None or m.group(1) == first.group(0):  # lone token: not a decl
        return None
    return m.group(1)


def unordered_decl_idents(code: List[str]) -> List[str]:
    """Identifiers declared in this file as unordered containers."""
    idents: List[str] = []
    for line in code:
        for m in UNORDERED_IDENT_RE.finditer(line):
            idents.append(m.group(1))
    return idents


def unordered_use_sites(code: List[str]) -> List[Tuple[int, str, str]]:
    """Candidate iteration sites: (line, ident, via 'range-for'|'begin').

    Resolved globally by the engine against the tree-wide declared-ident
    set, exactly as the legacy engine did.
    """
    sites: List[Tuple[int, str, str]] = []
    for idx, line in enumerate(code):
        lineno = idx + 1
        for m in RANGE_FOR_RE.finditer(line):
            sites.append((lineno, m.group(1), "range-for"))
        for m in BEGIN_RE.finditer(line):
            sites.append((lineno, m.group(1), "begin"))
    return sites


def unordered_iteration_message(ident: str, via: str) -> str:
    if via == "range-for":
        return ("range-for over '{}', declared as an "
                "unordered container: iteration order is hash order".format(ident))
    return ("begin() on '{}', declared as an "
            "unordered container: iteration order is hash order".format(ident))


def lint_local(path: Path, raw_lines: List[str], code: List[str],
               module: Optional[str]) -> List[Finding]:
    """All file-local ported rules (everything except unordered-iteration).

    Findings are RAW: waiver filtering happens in the engine, so the
    stale-waiver rule can see what each waiver is actually holding back.
    """
    findings: List[Finding] = []
    parallel_file = any(THREADING_RE.search(c) for c in code)
    realtime = module in REALTIME_MODULES
    converted_header = (module in CONVERTED_MODULES
                        and path.suffix in {".h", ".hpp"})
    float_idents = set()
    if parallel_file:
        for c in code:
            for m in FLOAT_DECL_RE.finditer(c):
                float_idents.add(m.group(1))

    for idx, c in enumerate(code):
        lineno = idx + 1

        if UNORDERED_DECL_RE.search(c):
            findings.append((lineno, "unordered",
                             "unordered container in simulation code: hash order can "
                             "leak into results; use std::map/std::set or waive with "
                             "a justification that it is never iterated"))

        if POINTER_KEY_RE.search(c):
            findings.append((lineno, "pointer-key",
                             "container keyed by pointer: pointer order is "
                             "allocation order and varies across runs"))

        if not realtime:
            for pattern, what in WALL_CLOCK_RES:
                if pattern.search(c):
                    findings.append((lineno, "wall-clock",
                                     f"{what}: simulation state must advance only on "
                                     "sim::Time (steady_clock may be waived for "
                                     "reporting-only wall durations)"))

        # Match the raw line (quoted includes are blanked in code), but only
        # on lines that are live preprocessor directives, so a commented-out
        # include does not flag.
        if (not realtime and c.lstrip().startswith("#")
                and OS_IO_INCLUDE_RE.search(raw_lines[idx])):
            findings.append((lineno, "os-io",
                             "OS I/O header outside a realtime module: simulation "
                             "code must never touch sockets/epoll/fds; only "
                             "src/daemon (the flowpulsed transport) may"))

        for pattern, what in BANNED_RNG_RES:
            if pattern.search(c):
                findings.append((lineno, "banned-rng",
                                 f"{what}: all randomness must flow from the seeded "
                                 "sim::Rng"))

        if converted_header:
            for m in RAW_SCALAR_ID_RE.finditer(c):
                name = m.group(1)
                if COUNT_LIKE_RE.search(name):
                    continue
                findings.append((lineno, "raw-scalar-id",
                                 f"raw integer '{name}' in a converted module's "
                                 "public header: use the net::*Id / core:: unit "
                                 "type so mix-ups stay compile errors"))

        if module is not None and module != "core":
            if STRONGID_CAST_RE.search(c):
                findings.append((lineno, "strongid-cast",
                                 "static_cast to a strong id type outside core/: "
                                 "construct at the boundary (e.g. LeafId{raw}) so "
                                 "the id-space crossing is visible"))

        m = MUTABLE_STATIC_RE.search(c)
        if m:
            # The first structural character after the keyword decides what
            # was declared: '(' is a function, anything else is an object.
            structural = re.search(r"[(;={]", c[m.end():])
            if structural and structural.group(0) != "(":
                findings.append((lineno, "mutable-global",
                                 "static/thread_local mutable object: hidden "
                                 "cross-lane (or scheduling-dependent per-lane) "
                                 "state — hoist it into a member or parameter so "
                                 "ownership is explicit"))

        ident = ns_mutable_global(c)
        if ident is not None:
            findings.append((lineno, "mutable-global",
                             f"namespace-scope mutable global '{ident}': shared "
                             "state every lane can reach — hoist it into the object "
                             "that owns the lifetime, or waive with the access "
                             "protocol that keeps it deterministic"))

        if not (module == "sim" and path.name == "time.h"):
            if RAW_SERIALIZATION_RE.search(c):
                findings.append((lineno, "raw-serialization-time",
                                 "raw-scalar serialization-time math outside its "
                                 "definition: call core::serialization_time(Bytes, "
                                 "GbitsPerSec) so byte counts and rates stay "
                                 "strong-typed"))

        if converted_header or (module in CONVERTED_MODULES
                                and path.suffix in {".cc", ".cpp"}):
            if MUTABLE_MEMBER_RE.search(c):
                findings.append((lineno, "mutable-member",
                                 "mutable member in a converted module: mutation "
                                 "behind a const interface hides shared state; "
                                 "waive with why it is per-instance and "
                                 "deterministic (mutable mutexes are exempt)"))

        if parallel_file:
            for m in ACCUM_RE.finditer(c):
                if m.group(1) in float_idents:
                    findings.append((lineno, "par-float-accum",
                                     f"accumulation into float '{m.group(1)}' in a "
                                     "threaded file: float addition is not "
                                     "associative, merge order must be serial and "
                                     "deterministic"))

    return findings
