"""SARIF 2.1.0 emission for fplint findings.

Minimal but valid: one run, one driver, per-rule metadata, one result
per finding with a physical location. Consumed by the GitHub
code-scanning upload in CI (with an artifact fallback when the API is
unavailable, e.g. on forks).
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

Finding = Tuple[int, str, str]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

# One-line rule descriptions (the long rationale lives in DESIGN.md).
RULE_DESCRIPTIONS: Dict[str, str] = {
    "unordered": "std::unordered_* container declared in simulation code",
    "unordered-iteration":
        "iteration over an identifier declared as an unordered container",
    "pointer-key": "container keyed by a pointer (allocation-order iteration)",
    "wall-clock": "wall-clock read in simulation code",
    "banned-rng": "std:: randomness instead of the seeded sim::Rng",
    "par-float-accum": "float accumulation in a threaded file",
    "raw-scalar-id": "raw integer id/unit in a converted module's header",
    "strongid-cast": "static_cast to a strong id type outside core/",
    "os-io": "OS I/O header included outside a realtime module",
    "mutable-global": "mutable state with static storage duration",
    "mutable-member": "mutable data member in a converted module",
    "raw-serialization-time":
        "raw-scalar serialization-time math outside its definition",
    "lane-capture":
        "cross-lane or deferred lambda captures a reference or lane-owned "
        "pointer",
    "variant-divergence":
        "side effect inside an FP_AUDIT/FP_TRACE/assert argument",
    "layering": "include that violates the module DAG",
    "stale-waiver": "waiver on a line where its rule no longer fires",
    "bad-waiver": "malformed waiver directive",
}


def make_sarif(results: List[Tuple[str, List[Finding]]],
               version: str) -> dict:
    rules_seen = sorted({rule for _, findings in results
                         for _, rule, _ in findings})
    rule_meta = [{
        "id": rule,
        "shortDescription": {
            "text": RULE_DESCRIPTIONS.get(rule, rule)},
        "defaultConfiguration": {"level": "error"},
    } for rule in rules_seen]
    rule_index = {rule: i for i, rule in enumerate(rules_seen)}

    sarif_results = []
    for disp, findings in results:
        uri = disp.replace("\\", "/")
        for lineno, rule, message in findings:
            sarif_results.append({
                "ruleId": rule,
                "ruleIndex": rule_index[rule],
                "level": "error",
                "message": {"text": message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        "region": {"startLine": lineno},
                    },
                }],
            })

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "fplint",
                "informationUri":
                    "https://github.com/flowpulse/flowpulse",
                "version": version,
                "rules": rule_meta,
            }},
            "results": sarif_results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write_sarif(path: str, results: List[Tuple[str, List[Finding]]],
                version: str) -> None:
    doc = make_sarif(results, version)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
