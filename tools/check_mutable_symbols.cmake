# Script-mode check (cmake -P): fail if any of the given static libraries
# defines a writable (mutable, static-storage) data symbol that is not on
# the allowlist. This is the post-build teeth behind detlint's
# mutable-global rule: the lint sees source lines, nm sees what the
# compiler actually emitted — function-local static guard variables,
# .bss/.data objects from templates or macros, anything the line-level
# heuristics cannot. Run by the mutable_state_symbols ctest over every
# fp_* library.
#
# Writable nm types: B/b (.bss), D/d (.data), G/g (small data), S/s
# (small bss). Read-only data (R/r) and functions (T/t/W/w) are fine.
#
# Excluded (not program state):
#   _ZTI / _ZTS / _ZTV   RTTI typeinfo / typeinfo-name / vtables (nm
#                        reports vtables as writable D on some targets
#                        because of relocations, but they are never
#                        written after load)
#   _ZZ...__ioinit       iostream init guard (std::ios_base::Init)
#   _ZGR                 lifetime-extended temporaries of constinit refs
#
# Allowlist (regex per entry, with justification — mirror of the detlint
# waivers in the source):
#   flowpulse::sim::audit anonymous-namespace hooks (g_handler,
#   g_dump_hook, g_dump_ctx): test-only ScopedHandler bridge, installed
#   before any simulation thread exists, read only on the failure path.
#
# Usage: cmake -DNM=/usr/bin/nm "-DLIBS=a.a;b.a;..." -P check_mutable_symbols.cmake

if(NOT DEFINED NM OR NOT DEFINED LIBS)
  message(FATAL_ERROR "usage: cmake -DNM=<nm> -DLIBS=<lib;lib;...> -P check_mutable_symbols.cmake")
endif()

set(FP_ALLOWED_SYMBOLS
  "^_ZN9flowpulse3sim5audit12_GLOBAL__N_1(9g_handlerE|11g_dump_hookE|10g_dump_ctxE)$"
)

set(violations "")
foreach(lib IN LISTS LIBS)
  if(NOT EXISTS "${lib}")
    message(FATAL_ERROR "library not found: ${lib}")
  endif()
  execute_process(COMMAND "${NM}" "${lib}"
    OUTPUT_VARIABLE symbols
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "nm failed on ${lib}: ${err}")
  endif()
  string(REPLACE "\n" ";" lines "${symbols}")
  foreach(line IN LISTS lines)
    # "<addr> <type> <name>" — writable data types only.
    if(NOT line MATCHES "^[0-9a-fA-F]+ ([BbDdGgSs]) (.+)$")
      continue()
    endif()
    set(name "${CMAKE_MATCH_2}")
    if(name MATCHES "^_ZT[ISV]" OR name MATCHES "__ioinit" OR name MATCHES "^_ZGR")
      continue()
    endif()
    set(allowed FALSE)
    foreach(pattern IN LISTS FP_ALLOWED_SYMBOLS)
      if(name MATCHES "${pattern}")
        set(allowed TRUE)
        break()
      endif()
    endforeach()
    if(NOT allowed)
      get_filename_component(libname "${lib}" NAME)
      list(APPEND violations "${libname}: ${name}")
    endif()
  endforeach()
endforeach()

if(violations)
  list(JOIN violations "\n  " joined)
  message(FATAL_ERROR
    "writable static-storage symbols outside the allowlist:\n  ${joined}\n"
    "Hidden mutable globals break the serial == parallel guarantee. Hoist "
    "the state into an owning object, or — if the access protocol is "
    "genuinely safe — add the mangled symbol to FP_ALLOWED_SYMBOLS in "
    "tools/check_mutable_symbols.cmake WITH a justification, next to a "
    "matching detlint waiver in the source.")
endif()
message(STATUS "no unexpected mutable symbols in ${LIBS}")
