// Ids construct explicitly only: a bare literal must not silently become a
// LeafId (argument-order swaps at call sites relied on exactly this).
// expect-error: could not convert|no viable conversion|conversion
#include "net/types.h"

namespace net = flowpulse::net;

int main() {
  net::LeafId l = 3;
  (void)l;
  return 0;
}
