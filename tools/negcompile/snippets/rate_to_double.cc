// A rate leaves its unit only via .v() — implicit decay to double is how
// "bandwidth_gbps" ended up divided by 8 twice in other simulators.
// expect-error: cannot convert|no viable conversion
#include "core/units.h"

namespace core = flowpulse::core;

int main() {
  double d = core::GbitsPerSec{400.0};
  (void)d;
  return 0;
}
