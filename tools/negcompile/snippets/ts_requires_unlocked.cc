// Calling an FP_REQUIRES(mu) method without holding mu must be a build
// error: the annotation is a precondition the analysis enforces at every
// call site, exactly how exp::WorkerPoolState and the daemon server's
// kServerLoop role are protected.
// expect-error: requires holding mutex|calling function .* requires|-Wthread-safety
#include "core/thread_safety.h"

namespace core = flowpulse::core;

namespace {

struct Shared {
  core::Mutex mu;
  int value FP_GUARDED_BY(mu) = 0;

  int read_locked() FP_REQUIRES(mu) { return value; }
};

}  // namespace

int main() {
  Shared s;
  return s.read_locked();  // caller never acquired s.mu: must not compile
}
