// Comparing ids from different spaces (leaf 2 == spine 2?) is a category
// error, not an equality.
// expect-error: no match for|invalid operands
#include "net/types.h"

namespace net = flowpulse::net;

int main() {
  bool b = net::LeafId{2} == net::SpineId{2};
  (void)b;
  return 0;
}
