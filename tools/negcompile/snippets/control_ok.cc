// Positive control: the blessed idioms must keep compiling, proving the
// harness distinguishes "rejected by the type system" from "harness broken".
#include <cstdint>

#include "core/strong_id.h"
#include "core/units.h"
#include "sim/time.h"
#include "net/types.h"

namespace core = flowpulse::core;
namespace net = flowpulse::net;
namespace sim = flowpulse::sim;

int main() {
  core::Bytes total{};
  for (const net::UplinkIndex u : core::ids<net::UplinkIndex>(4)) {
    total += core::Bytes{1500} * (u.v() + 1);
  }
  const core::GbitsPerSec rate = total / sim::Time::microseconds(1);
  const sim::Time wire = core::serialization_time(total, core::GbitsPerSec{400.0});
  const net::LinkId link = net::LinkId::of(net::LeafId{2}, net::UplinkIndex{1});
  const std::uint32_t raw = link.leaf().v();
  return (rate.v() > 0.0 && wire.ns() > 0.0 && raw == 2u) ? 0 : 1;
}
