// Packets × Packets would be packets² — scaling a count takes a plain
// integer factor on exactly one side.
// expect-error: no match for|invalid operands
#include "core/units.h"

namespace core = flowpulse::core;

int main() {
  auto x = core::Packets{2} * core::Packets{3};
  (void)x;
  return 0;
}
