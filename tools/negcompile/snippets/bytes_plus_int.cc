// Adding a unitless literal to Bytes must be spelled Bytes{n} — "+ 40" is
// ambiguous between header bytes, packets, and a count.
// expect-error: no match for|invalid operands
#include "core/units.h"

namespace core = flowpulse::core;

int main() {
  auto x = core::Bytes{1500} + 40;
  (void)x;
  return 0;
}
