// Leaving id space requires a deliberate .v() — no implicit decay back to
// uint32_t, or every converted API could be silently un-converted.
// expect-error: cannot convert|no viable conversion
#include <cstdint>

#include "net/types.h"

namespace net = flowpulse::net;

int main() {
  std::uint32_t raw = net::HostId{7};
  (void)raw;
  return 0;
}
