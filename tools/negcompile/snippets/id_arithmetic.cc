// Ids are names, not quantities: LeafId + LeafId has no meaning (what is
// leaf 3 plus leaf 5?). Offsets go through .v() on purpose.
// expect-error: no match for|invalid operands
#include "net/types.h"

namespace net = flowpulse::net;

int main() {
  auto x = net::LeafId{3} + net::LeafId{5};
  (void)x;
  return 0;
}
