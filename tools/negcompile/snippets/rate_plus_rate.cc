// Link rates don't add in this codebase's physics: ports serialize at a
// fixed rate; aggregate throughput is Bytes over Time, never rate + rate.
// expect-error: no match for|invalid operands
#include "core/units.h"

namespace core = flowpulse::core;

int main() {
  auto x = core::GbitsPerSec{400.0} + core::GbitsPerSec{400.0};
  (void)x;
  return 0;
}
