// Positive control for the thread-safety negcompile pair: the SAME
// guarded field and FP_REQUIRES method as the failing snippets, accessed
// correctly through core::LockGuard — proving the analysis rejects the
// misuse, not the pattern.
#include "core/thread_safety.h"

namespace core = flowpulse::core;

namespace {

struct Shared {
  core::Mutex mu;
  int value FP_GUARDED_BY(mu) = 0;

  int read_locked() FP_REQUIRES(mu) { return value; }
};

}  // namespace

int main() {
  Shared s;
  const core::LockGuard lock{s.mu};
  s.value = 7;
  return s.read_locked();
}
