// The raw-scalar serialization-time overload lives behind sim::detail now:
// spelling sim::serialization_time(bytes, gbps) must not resolve, so code
// cannot silently bypass core::serialization_time(Bytes, GbitsPerSec) and
// hand a rate where a byte count goes.
// expect-error: no member named|is not a member|has not been declared
#include "sim/time.h"

namespace sim = flowpulse::sim;

int main() {
  sim::Time t = sim::serialization_time(4096ull, 400.0);
  (void)t;
  return 0;
}
