// Bytes + Packets is dimensionally meaningless — the exact counter mix-up
// FlowPulse's per-port byte attribution cannot afford.
// expect-error: no match for|invalid operands
#include "core/units.h"

namespace core = flowpulse::core;

int main() {
  auto x = core::Bytes{4096} + core::Packets{1};
  (void)x;
  return 0;
}
