// Reading an FP_GUARDED_BY field without holding its mutex must be a build
// error under clang's thread-safety analysis — this is the compile-time
// race detector actually biting, not just decorating.
// expect-error: requires holding mutex|-Wthread-safety
#include "core/thread_safety.h"

namespace core = flowpulse::core;

namespace {

struct Shared {
  core::Mutex mu;
  int value FP_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Shared s;
  return s.value;  // no lock held: must not compile
}
