// A PortId is not a HostId: handing a switch port index to something that
// addresses a host was representable (and silently wrong) when both were
// uint32_t.
// expect-error: could not convert|cannot convert|no matching function
#include "net/types.h"

namespace net = flowpulse::net;

namespace {
void deliver_to(net::HostId) {}
}  // namespace

int main() {
  deliver_to(net::PortId{3});
  return 0;
}
