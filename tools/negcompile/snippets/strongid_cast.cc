// static_cast between id spaces is banned (detlint strongid-cast outside
// core/) and, because the types share no conversion path, does not even
// compile: uplink→spine goes through TopologyInfo::spine_of, not a cast.
// expect-error: no matching|invalid|cannot convert
#include "net/types.h"

namespace net = flowpulse::net;

int main() {
  auto s = static_cast<net::SpineId>(net::UplinkIndex{1});
  (void)s;
  return 0;
}
