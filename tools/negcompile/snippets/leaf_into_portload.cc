// PortLoadMap is indexed (LeafId, UplinkIndex); indexing it by HostId was a
// plausible off-by-a-layer bug when every id was a bare integer.
// expect-error: could not convert|cannot convert|no matching
#include "flowpulse/port_load.h"
#include "net/types.h"

namespace net = flowpulse::net;

int main() {
  flowpulse::fp::PortLoadMap map{4, 2};
  (void)map.at(net::HostId{0}, net::UplinkIndex{0});
  return 0;
}
